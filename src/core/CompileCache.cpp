//===- core/CompileCache.cpp - function-level compilation cache -----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "core/CompileCache.h"

#include <cstring>

using namespace ucc;

namespace {

/// FNV-1a over a byte buffer (same constants as regalloc/WindowCache).
uint64_t fnv1a(const std::vector<uint8_t> &Bytes) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (uint8_t B : Bytes) {
    H ^= B;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Appends fixed-width little-endian fields to a key buffer. The encoding
/// is canonical: every field is length- or count-prefixed, so no two
/// distinct inputs serialize to the same bytes.
class KeyWriter {
public:
  explicit KeyWriter(std::vector<uint8_t> &Out) : Out(Out) {}

  void u8(uint8_t V) { Out.push_back(V); }
  void u32(uint32_t V) { raw(&V, sizeof V); }
  void i32(int32_t V) { raw(&V, sizeof V); }
  void i64(int64_t V) { raw(&V, sizeof V); }
  void u64(uint64_t V) { raw(&V, sizeof V); }
  void f64(double V) {
    if (V == 0.0)
      V = 0.0; // canonicalize -0.0
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof Bits);
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }
  void ints(const std::vector<int> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (int X : V)
      i32(X);
  }
  void doubles(const std::vector<double> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (double X : V)
      f64(X);
  }
  void strs(const std::vector<std::string> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (const std::string &S : V)
      str(S);
  }

private:
  void raw(const void *P, size_t N) {
    const uint8_t *B = static_cast<const uint8_t *>(P);
    Out.insert(Out.end(), B, B + N);
  }

  std::vector<uint8_t> &Out;
};

/// Canonical encoding of a post-opt IR function. Source locations are
/// deliberately excluded: they never influence generated code.
void writeIRFunction(KeyWriter &W, const Function &F) {
  W.str(F.Name);
  W.ints(F.Params);
  W.i32(F.NumVRegs);
  W.strs(F.VRegNames);
  W.u32(static_cast<uint32_t>(F.FrameObjects.size()));
  for (const FrameObject &FO : F.FrameObjects) {
    W.str(FO.Name);
    W.i32(FO.SizeWords);
  }
  W.u32(static_cast<uint32_t>(F.Blocks.size()));
  for (const BasicBlock &BB : F.Blocks) {
    W.str(BB.Name);
    W.u32(static_cast<uint32_t>(BB.Instrs.size()));
    for (const Instr &I : BB.Instrs) {
      W.u8(static_cast<uint8_t>(I.Op));
      W.u8(static_cast<uint8_t>(I.BinK));
      W.u8(static_cast<uint8_t>(I.UnK));
      W.u8(static_cast<uint8_t>(I.PredK));
      W.i32(I.Dst);
      W.ints(I.Srcs);
      W.i64(I.Imm);
      W.i32(I.Global);
      W.i32(I.Slot);
      W.i32(I.Callee);
      W.i32(I.TrueBB);
      W.i32(I.FalseBB);
    }
  }
}

/// Canonical encoding of the previous version's final machine code for
/// one function (the old-record slice UCC-RA aligns against).
void writeOldFunction(KeyWriter &W, const MachineFunction &MF) {
  W.str(MF.Name);
  W.i32(MF.NextVReg);
  W.strs(MF.VRegNames);
  W.u32(static_cast<uint32_t>(MF.FrameObjects.size()));
  for (const MFrameObject &FO : MF.FrameObjects) {
    W.str(FO.Name);
    W.i32(FO.SizeWords);
    W.u8(FO.IsSpill ? 1 : 0);
  }
  W.u32(static_cast<uint32_t>(MF.Blocks.size()));
  for (const MBlock &BB : MF.Blocks) {
    W.str(BB.Name);
    W.ints(BB.Succs);
    W.u32(static_cast<uint32_t>(BB.Instrs.size()));
    for (const MInstr &I : BB.Instrs) {
      W.i32(static_cast<int32_t>(I.Op));
      W.i32(I.A);
      W.i32(I.B);
      W.i32(I.C);
      W.i32(I.VA);
      W.i32(I.VB);
      W.i32(I.VC);
      W.i32(I.Imm);
      W.i32(I.Target);
      W.i32(I.Callee);
      W.i32(I.GlobalIdx);
      W.i32(I.FrameIdx);
      W.i32(I.IRIndex);
    }
  }
}

} // namespace

uint64_t ucc::digestNameTables(const std::vector<std::string> &GlobalNames,
                               const std::vector<std::string> &FunctionNames) {
  std::vector<uint8_t> Bytes;
  KeyWriter W(Bytes);
  W.strs(GlobalNames);
  W.strs(FunctionNames);
  return fnv1a(Bytes);
}

uint64_t ucc::digestModuleNames(const Module &M) {
  std::vector<uint8_t> Bytes;
  KeyWriter W(Bytes);
  W.u32(static_cast<uint32_t>(M.Globals.size()));
  for (const GlobalVar &G : M.Globals)
    W.str(G.Name);
  W.u32(static_cast<uint32_t>(M.Functions.size()));
  for (const Function &F : M.Functions)
    W.str(F.Name);
  return fnv1a(Bytes);
}

CompileCache::Key CompileCache::buildKey(const CompileKeyInputs &In) {
  Key K;
  K.reserve(256);
  KeyWriter W(K);
  W.u8('C');
  W.u8(1); // schema version
  W.u8(In.RAKind);
  W.u8(In.DAKind);
  W.u8(In.UseUcc ? 1 : 0);
  W.u8(In.UccFrames ? 1 : 0);
  W.i32(In.SpaceT);
  if (In.UseUcc) {
    const UccAllocOptions &U = *In.Ucc;
    W.i32(U.ChunkK);
    W.f64(U.Cnt);
    W.f64(U.EtransInstr);
    W.f64(U.EexeCycle);
    W.u8(U.EnableSplits ? 1 : 0);
    W.u8(static_cast<uint8_t>(U.Strategy));
    W.i32(U.IlpMaxBinaries);
    W.f64(U.IlpTimeLimitSec);
    W.u8(U.EnableWindowCache ? 1 : 0);
    W.doubles(*In.Freq);
  }
  W.u64(In.NewNamesDigest);
  writeIRFunction(W, *In.F);
  if (In.OldFinal) {
    W.u8(1);
    writeOldFunction(W, *In.OldFinal);
    W.u64(In.OldNamesDigest);
    if (In.UccFrames && In.OldFrameOffsets) {
      W.u8(1);
      W.ints(*In.OldFrameOffsets);
    } else {
      W.u8(0);
    }
  } else {
    W.u8(0);
  }
  return K;
}

CompiledFunction CompileCache::lookupOrCompute(
    const Key &K, const std::function<CompiledFunction()> &Compute,
    bool *WasHit) {
  uint64_t H = fnv1a(K);
  if (WasHit)
    *WasHit = false;
  std::unique_lock<std::mutex> Guard(Lock);
  if (Capacity == 0) {
    // Storage disabled: pure pass-through, still counted so cache-off
    // baselines report comparable accounting.
    ++Counts.Misses;
    Guard.unlock();
    return Compute();
  }

  std::list<Entry> &Chain = Buckets[H];
  for (Entry &E : Chain) {
    if (E.K != K)
      continue;
    ++Counts.Hits;
    if (WasHit)
      *WasHit = true;
    if (!E.Ready) {
      ++Counts.InflightWaits;
      ++E.Waiters;
      Filled.wait(Guard, [&] { return E.Ready; });
      --E.Waiters;
    }
    E.LastUse = ++Tick;
    return E.R;
  }

  // Miss: publish an in-flight entry, then compile outside the lock so
  // other functions (and same-key waiters) make progress meanwhile.
  ++Counts.Misses;
  Chain.emplace_back();
  Entry &E = Chain.back();
  E.K = K;
  E.LastUse = ++Tick;
  ++Resident;
  evictIfNeeded();
  Guard.unlock();

  CompiledFunction R = Compute();

  Guard.lock();
  E.R = R;
  E.Ready = true;
  Filled.notify_all();
  return R;
}

void CompileCache::evictIfNeeded() {
  while (Resident > Capacity) {
    // Find the least-recently-used completed entry; in-flight entries and
    // entries with waiters are pinned.
    std::unordered_map<uint64_t, std::list<Entry>>::iterator VictimBucket =
        Buckets.end();
    std::list<Entry>::iterator Victim;
    uint64_t Oldest = ~0ULL;
    for (auto BI = Buckets.begin(); BI != Buckets.end(); ++BI) {
      for (auto EI = BI->second.begin(); EI != BI->second.end(); ++EI) {
        if (!EI->Ready || EI->Waiters > 0)
          continue;
        if (EI->LastUse < Oldest) {
          Oldest = EI->LastUse;
          VictimBucket = BI;
          Victim = EI;
        }
      }
    }
    if (VictimBucket == Buckets.end())
      return; // everything resident is in flight; let it overflow briefly
    VictimBucket->second.erase(Victim);
    if (VictimBucket->second.empty())
      Buckets.erase(VictimBucket);
    --Resident;
    ++Counts.Evictions;
  }
}

CompileCacheStats CompileCache::stats() const {
  std::lock_guard<std::mutex> Guard(Lock);
  CompileCacheStats S = Counts;
  S.Entries = Resident;
  return S;
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> Guard(Lock);
  for (auto BI = Buckets.begin(); BI != Buckets.end();) {
    std::list<Entry> &Chain = BI->second;
    for (auto EI = Chain.begin(); EI != Chain.end();) {
      if (EI->Ready && EI->Waiters == 0) {
        EI = Chain.erase(EI);
        --Resident;
      } else {
        ++EI;
      }
    }
    BI = Chain.empty() ? Buckets.erase(BI) : std::next(BI);
  }
}
