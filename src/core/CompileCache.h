//===- core/CompileCache.h - function-level compilation cache -------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function-level compilation cache for incremental recompilation. Each
/// entry memoizes the whole per-function back-half pipeline result —
/// instruction selection, register allocation, and frame layout — keyed by
/// an FNV-1a content hash over a canonical byte encoding of everything
/// that can influence that result:
///
///   * the function's post-opt IR (name, params, vregs, frame objects,
///     blocks, every instruction field except source locations),
///   * the back-half compile options (RA/DA kinds, every UccAllocOptions
///     field including the energy-model-derived costs, UccDaOptions),
///   * the per-statement frequency vector fed to UCC-RA,
///   * a digest of the new module's global/function name tables (CALL and
///     global accesses compare names across versions via these tables),
///   * and the relevant slice of the old CompilationRecord: the previous
///     final machine code for this function, its old frame offsets, and
///     the old name-table digest — or an explicit "absent" marker.
///
/// The design generalizes regalloc/WindowCache: collision chains under a
/// 64-bit hash confirmed by a full byte-compare of the canonical key, and
/// an in-flight latch so that when two threads want the same function only
/// one compiles while the other waits on a condition variable. Eviction is
/// LRU with in-flight entries pinned (same policy as serve/PlanService).
///
/// Because the key captures every input, a hit returns a result that is
/// byte-identical to what a fresh compile would produce — the determinism
/// contract (same output at jobs 1 vs 8, cache on vs off) holds by
/// construction and is enforced by JobsDeterminismTest.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_CORE_COMPILECACHE_H
#define UCC_CORE_COMPILECACHE_H

#include "codegen/BinaryImage.h"
#include "codegen/MachineIR.h"
#include "ir/IR.h"
#include "regalloc/UccAlloc.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace ucc {

/// Exact cache accounting, mirrored into `compile.*` telemetry counters by
/// the compiler back half.
struct CompileCacheStats {
  uint64_t Hits = 0;          ///< lookups answered from the cache
  uint64_t Misses = 0;        ///< lookups that ran the pipeline
  uint64_t Evictions = 0;     ///< entries dropped by the LRU policy
  uint64_t InflightWaits = 0; ///< hits that waited on an in-flight compile
  uint64_t Entries = 0;       ///< resident entries (including in-flight)
};

/// The memoized per-function pipeline result.
struct CompiledFunction {
  MachineFunction Final; ///< post-RA machine code (incl. spill slots)
  FrameLayout Frame;     ///< frame layout for Final
  UccAllocStats Stats;   ///< deterministic allocator statistics
};

/// Inputs to the canonical key encoding for one function. Pointers refer
/// to the caller's data and must stay valid for the buildCompileKey call.
struct CompileKeyInputs {
  const Function *F = nullptr; ///< post-opt IR for this function
  uint8_t RAKind = 0;          ///< RegAllocKind as integer
  uint8_t DAKind = 0;          ///< DataAllocKind as integer
  bool UseUcc = false;         ///< UCC-RA active (UC RA + old record)
  bool UccFrames = false;      ///< update-conscious frame layout active
  /// Effective UCC-RA options (energy costs already injected); read only
  /// when UseUcc.
  const UccAllocOptions *Ucc = nullptr;
  int SpaceT = 0; ///< UccDaOptions::SpaceT
  /// Per-statement frequency estimates fed to UCC-RA; null when !UseUcc.
  const std::vector<double> *Freq = nullptr;
  uint64_t NewNamesDigest = 0; ///< digest of the new module name tables
  /// Old-record slice: previous final code for this function (null when
  /// the function is new or there is no old record).
  const MachineFunction *OldFinal = nullptr;
  /// Previous frame offsets row; read only when UccFrames.
  const std::vector<int> *OldFrameOffsets = nullptr;
  uint64_t OldNamesDigest = 0; ///< digest of the old name tables (0 = none)
};

/// Digest of a module's global + function name tables (order-sensitive,
/// length-prefixed FNV-1a). Computed once per compile and folded into
/// every function's key.
uint64_t digestNameTables(const std::vector<std::string> &GlobalNames,
                          const std::vector<std::string> &FunctionNames);

/// Same digest computed straight from a module's globals and functions
/// (no intermediate string-table copies).
uint64_t digestModuleNames(const Module &M);

/// Thread-safe LRU cache of per-function pipeline results.
class CompileCache {
public:
  /// Canonical key bytes; equality of keys implies equality of results.
  using Key = std::vector<uint8_t>;

  /// \p Capacity bounds resident entries; 0 disables storage (every
  /// lookup misses — useful for cache-off baselines with identical code
  /// paths).
  explicit CompileCache(size_t Capacity = 1024) : Capacity(Capacity) {}

  /// Builds the canonical key for \p In (serialize + FNV-1a happens in
  /// lookupOrCompute; the key carries the full bytes so hash collisions
  /// can never alias two functions).
  static Key buildKey(const CompileKeyInputs &In);

  /// Returns the cached result for \p K, computing it with \p Compute on
  /// a miss. Concurrent callers with the same key are latched: one
  /// computes, the rest wait and share the result. \p WasHit (optional)
  /// reports whether this lookup was answered from the cache.
  CompiledFunction
  lookupOrCompute(const Key &K,
                  const std::function<CompiledFunction()> &Compute,
                  bool *WasHit = nullptr);

  /// Exact accounting snapshot.
  CompileCacheStats stats() const;

  /// Drops every completed entry (in-flight entries survive) and resets
  /// nothing else; accounting keeps accumulating.
  void clear();

private:
  struct Entry {
    Key K;
    CompiledFunction R;
    bool Ready = false;
    int Waiters = 0; ///< threads blocked on this entry (pins it)
    uint64_t LastUse = 0;
  };

  void evictIfNeeded(); // caller holds Lock

  mutable std::mutex Lock;
  std::condition_variable Filled;
  /// Hash -> collision chain. std::list gives stable entry addresses while
  /// other chains grow (threads block on entries across unlocks).
  std::unordered_map<uint64_t, std::list<Entry>> Buckets;
  size_t Capacity;
  size_t Resident = 0;
  uint64_t Tick = 0;
  CompileCacheStats Counts;
};

} // namespace ucc

#endif // UCC_CORE_COMPILECACHE_H
