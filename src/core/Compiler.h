//===- core/Compiler.h - the update-conscious compiler driver -------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: the sink-side compiler of the
/// paper's Fig. 1. `compile` performs an initial compilation and records
/// its code-generation decisions; `recompile` compiles an updated source
/// either update-obliviously (the GCC-RA/GCC-DA baseline) or update-
/// consciously against the stored record (UCC-RA/UCC-DA); `makeUpdate`
/// summarizes the binary difference as the edit script a sensor applies
/// (Fig. 2).
///
/// Typical use:
/// \code
///   DiagnosticEngine Diag;
///   auto V1 = Compiler::compile(SourceV1, {}, Diag);
///   CompileOptions Opts;
///   Opts.RA = RegAllocKind::UpdateConscious;
///   Opts.DA = DataAllocKind::UpdateConscious;
///   auto V2 = Compiler::recompile(SourceV2, V1->Record, Opts, Diag);
///   UpdatePackage Pkg = makeUpdate(*V1, *V2);
///   // Pkg.ScriptBytes go over the radio; sensors run applyUpdate().
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef UCC_CORE_COMPILER_H
#define UCC_CORE_COMPILER_H

#include "codegen/BinaryImage.h"
#include "core/Record.h"
#include "dataalloc/DataAlloc.h"
#include "diff/ImageDiff.h"
#include "energy/EnergyModel.h"
#include "opt/Passes.h"
#include "regalloc/UccAlloc.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ucc {

class CompileCache;

/// Which register allocator a recompilation uses.
enum class RegAllocKind { Baseline, UpdateConscious };

/// Compiler configuration.
struct CompileOptions {
  OptLevel Opt = OptLevel::O1;
  RegAllocKind RA = RegAllocKind::Baseline;
  DataAllocKind DA = DataAllocKind::BaselineHash;
  UccAllocOptions Ucc;   ///< UCC-RA knobs (K, Cnt, strategy, splits)
  UccDaOptions UccDa;    ///< UCC-DA knobs (SpaceT)
  EnergyModel Energy;    ///< fills the UCC cost terms
  /// Measured `freq(s)` per function name (index = IR statement index).
  /// When a function has an entry here, UCC-RA uses it instead of the
  /// static loop-depth estimate. Build one with
  /// profiledStatementFrequencies().
  std::map<std::string, std::vector<double>> ProfiledFreq;
  /// Worker threads for the per-function register-allocation loop
  /// (independent UCC-RA problems). 0 = ThreadPool::defaultJobs()
  /// (`--jobs` / UCC_JOBS / hardware concurrency); 1 = serial. Results
  /// are bit-identical for every value (docs/PERFORMANCE.md).
  int Jobs = 0;
  /// Optional function-level compilation cache (core/CompileCache.h).
  /// When set, unchanged functions skip isel -> RA -> frame layout on
  /// recompiles; results are byte-identical with the cache on or off.
  /// Non-owning — the caller keeps the cache alive across compiles (the
  /// serving layer and UpdateSession own one per store).
  CompileCache *Cache = nullptr;
};

/// Everything a compilation produces.
struct CompileOutput {
  Module IR;                 ///< optimized IR
  MachineModule MachineCode; ///< final, register-allocated
  BinaryImage Image;
  CompilationRecord Record;  ///< what the sink stores for next time
  DataLayoutMap Layout;
  std::vector<UccAllocStats> RegAllocStats; ///< per function (UCC runs)
  RegionLayout DataAllocStats;              ///< UCC-DA region statistics
  /// Per function, the originating IR-statement index of every encoded
  /// instruction (-1 for compiler-inserted code). Bridges simulator
  /// profiles back to `freq(s)`.
  std::vector<std::vector<int>> EncodedIRIndex;
};

/// The compiler facade.
class Compiler {
public:
  /// Initial compilation (no previous decisions).
  static std::optional<CompileOutput> compile(const std::string &Source,
                                              const CompileOptions &Opts,
                                              DiagnosticEngine &Diag);

  /// Compiles updated \p Source against \p OldRecord. With
  /// RegAllocKind::Baseline this is the update-oblivious baseline (the
  /// record is ignored except for UCC-DA when selected).
  static std::optional<CompileOutput>
  recompile(const std::string &Source, const CompilationRecord &OldRecord,
            const CompileOptions &Opts, DiagnosticEngine &Diag);
};

/// The dissemination-ready summary of one update.
struct UpdatePackage {
  ImageUpdate Update;  ///< per-function edit scripts + data delta
  ImageDiff Diff;      ///< Diff_inst metrics
  size_t ScriptBytes = 0;
};

/// Builds the update package from two compilations. Per-function diffing
/// runs on up to \p Jobs threads (0 = ThreadPool::defaultJobs()); the
/// package is byte-identical for every job count.
UpdatePackage makeUpdate(const CompileOutput &Old, const CompileOutput &New,
                         int Jobs = 0);

/// Converts a profiled simulator run of \p Out's image into measured
/// `freq(s)` tables (per function name, indexed by IR statement), suitable
/// for CompileOptions::ProfiledFreq. Counts are normalized so the entry
/// function's first statement has frequency 1; statements that never ran
/// get a small non-zero floor. The run must have been collected with
/// SimOptions::CollectProfile on the same image.
///
/// Profiles are measured on the *deployed* (old) version and applied to
/// the updated one — the paper's usage. Statement indices drift where the
/// source changed, so treat the result as the estimate it is; unchanged
/// regions (the ones whose allocation decisions matter) line up.
std::map<std::string, std::vector<double>>
profiledStatementFrequencies(const CompileOutput &Out,
                             const std::vector<uint64_t> &InstrCounts);

} // namespace ucc

#endif // UCC_CORE_COMPILER_H
