//===- core/Record.h - the sink-side compilation record -------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CompilationRecord is what makes the compiler *update-conscious*
/// (paper section 2): the sink keeps, alongside each deployed image, the
/// code-generation decisions that produced it — the final register-
/// allocated machine code (with per-operand virtual-register provenance,
/// i.e. which variable each register held) and the data layout. When the
/// source is updated, the compiler recompiles against this record so the
/// new binary matches the old one wherever possible.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_CORE_RECORD_H
#define UCC_CORE_RECORD_H

#include "codegen/MachineIR.h"
#include "dataalloc/DataAlloc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ucc {

/// Everything the sink remembers about one compilation.
struct CompilationRecord {
  /// Old module's function names, in function-index order (resolves the
  /// Callee indices inside FinalCode across versions).
  std::vector<std::string> FunctionNames;
  /// Old module's global names, in global-index order.
  std::vector<std::string> GlobalNames;
  /// Final (register-allocated) machine code per function, parallel to
  /// FunctionNames. Operand provenance lives in MInstr::VA/VB/VC.
  std::vector<MachineFunction> FinalCode;
  /// Frame-object word offsets per function (parallel to FinalCode's
  /// FrameObjects), as encoded into the deployed image.
  std::vector<std::vector<int>> FrameOffsets;
  /// The data layout the old image used.
  OldRegionLayout GlobalLayout;

  int findFunction(const std::string &Name) const;

  std::vector<uint8_t> serialize() const;
  static bool deserialize(const std::vector<uint8_t> &Bytes,
                          CompilationRecord &Out);
};

} // namespace ucc

#endif // UCC_CORE_RECORD_H
