//===- core/VersionStore.h - versioned compilation artifacts --------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sink's long-lived state: every version it ever deployed, as a chain
/// of compilation artifacts (image + compilation record + data layout +
/// parent link). The paper's workflow is inherently stateful — the sink
/// "keeps the record of previous compilation" across an open-ended stream
/// of updates — and this store makes that state first class instead of
/// leaving it implicit in caller-managed CompileOutput variables.
///
/// On top of the store sits the planner: an update between ANY two stored
/// versions is planned either as a fresh endpoint diff (Direct) or as the
/// composition of the per-step scripts along the parent chain (Chained),
/// whichever costs fewer edit-script bytes on air. An UpdateSession wraps
/// the commit loop (compile against the latest record, store the result),
/// and planFleetCampaign binds the planner into the net layer's
/// mixed-version fleet campaign.
///
/// A store is either purely in-memory (default constructed) or backed by a
/// directory (`open`), where it persists a JSON manifest plus one image and
/// one record file per version, so a sink process can be restarted without
/// losing the chain.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_CORE_VERSIONSTORE_H
#define UCC_CORE_VERSIONSTORE_H

#include "core/CompileCache.h"
#include "core/Compiler.h"
#include "net/Network.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ucc {

/// One deployed version held by the sink.
struct StoredVersion {
  int Id = -1;     ///< dense version number (0 = initial)
  int Parent = -1; ///< version this one was recompiled against (-1 = root)
  std::string SourceHash; ///< FNV-1a of the source text (hex)
  /// Edit-script bytes of the update Parent -> this (0 for the root).
  size_t ScriptBytesFromParent = 0;
  BinaryImage Image;
  CompilationRecord Record;
  DataLayoutMap Layout;
};

/// A planned update between two stored versions.
struct UpdatePlan {
  int From = -1;
  int To = -1;
  /// How the winning package was built: one fresh endpoint diff, or the
  /// composition of the stepwise scripts along the parent chain.
  enum class RouteKind { Direct, Chained };
  RouteKind Route = RouteKind::Direct;
  ImageUpdate Update;      ///< the winning package
  size_t ScriptBytes = 0;  ///< its size on air
  size_t DirectBytes = 0;  ///< cost of the fresh endpoint diff
  size_t ChainedBytes = 0; ///< cost of the composed route (0 if none)
  int ChainSteps = 0;      ///< DAG hops From -> To via the LCA (0 if none)
};

/// The sink's version chain. Pointers returned by find()/latest() are
/// invalidated by the next addInitial()/addUpdate().
class VersionStore {
public:
  /// An in-memory store (nothing persisted).
  VersionStore() = default;

  /// Opens (or initializes) a store backed by \p Dir. Loads every version
  /// recorded in the manifest; reports malformed manifests or unreadable
  /// artifacts to \p Diag and returns nullopt.
  static std::optional<VersionStore> open(const std::string &Dir,
                                          DiagnosticEngine &Diag);

  /// Compiles \p Source as version 0. Fails (returning -1) if the store is
  /// non-empty or compilation fails.
  int addInitial(const std::string &Source, const CompileOptions &Opts,
                 DiagnosticEngine &Diag);

  /// Recompiles \p Source against version \p ParentId (-1 = latest) and
  /// stores the result as a new version. Returns the new id, or -1.
  int addUpdate(const std::string &Source, const CompileOptions &Opts,
                DiagnosticEngine &Diag, int ParentId = -1);

  const StoredVersion *find(int Id) const;
  const StoredVersion *latest() const;

  /// The version DAG made explicit: `addUpdate(..., ParentId)` may branch
  /// off any stored version, so histories form a parent tree rather than
  /// one chain. `children` lists the versions committed against \p Id (in
  /// id order); `tips` lists every leaf (versions nothing was committed
  /// against) — a linear history has exactly one tip.
  std::vector<int> children(int Id) const;
  std::vector<int> tips() const;

  size_t size() const { return Versions.size(); }
  const std::vector<StoredVersion> &versions() const { return Versions; }
  const std::string &directory() const { return Dir; }

  /// Plans the update taking \p FromId to \p ToId: builds the fresh
  /// endpoint diff, and — whenever the two versions are connected in the
  /// parent DAG (upgrade, rollback, or cross-branch) — the composed
  /// stepwise route through their lowest common ancestor, then picks
  /// whichever costs fewer edit-script bytes (ties go Direct, matching
  /// what a graph-oblivious sink would ship). Returns nullopt for unknown
  /// ids or a composition failure.
  std::optional<UpdatePlan> plan(int FromId, int ToId) const;

private:
  bool persist(const StoredVersion &V, DiagnosticEngine &Diag);
  bool writeManifest(DiagnosticEngine &Diag) const;

  std::string Dir; ///< empty = in-memory only
  std::vector<StoredVersion> Versions;
};

/// The direct-vs-chained planner over any dense version index: \p Find maps
/// an id to its StoredVersion (nullptr = unknown). The composed candidate
/// is the cheapest route through the version DAG — the unique tree path
/// through the lowest common ancestor, discovered by parent walks, with
/// the direct endpoint diff competing as an always-present edge — so
/// rollbacks and cross-branch hops compose just like forward chains. This
/// is the single planning algorithm behind VersionStore::plan and
/// serve/PlanService — the service plans on an immutable snapshot, the
/// store on its live graph, and both produce byte-identical packages
/// because they share this function. Counts store.plans /
/// store.plans_direct / store.plans_chained.
std::optional<UpdatePlan> planBetweenVersions(
    const std::function<const StoredVersion *(int)> &Find, int FromId,
    int ToId);

/// The stateful replacement for hand-rolled compile/recompile chains: each
/// commit compiles the new source against the stored chain tip and appends
/// the result.
class UpdateSession {
public:
  /// A session owns a function-level compile cache (core/CompileCache.h)
  /// shared by every commit, so functions untouched between versions skip
  /// isel -> RA -> frame layout. Pass Opts with a non-null Cache to share
  /// an external cache instead; results are byte-identical either way.
  UpdateSession(VersionStore &Store, CompileOptions Opts);
  ~UpdateSession();

  /// Compiles \p Source (initial compile when the store is empty, update-
  /// conscious recompile against the latest version otherwise) and stores
  /// it. Returns the new version id, or -1.
  int commit(const std::string &Source, DiagnosticEngine &Diag);

  /// Plans previous-tip -> current-tip. Requires at least two versions.
  std::optional<UpdatePlan> planFromPrevious() const;

  VersionStore &store() { return Store; }

  /// Accounting for the session's compile cache (hits accumulate across
  /// commits).
  CompileCacheStats compileCacheStats() const;

private:
  VersionStore &Store;
  CompileOptions Opts;
  std::unique_ptr<CompileCache> Cache; ///< used when Opts.Cache is null
};

/// Plans and runs a fleet campaign bringing a mixed-version network to
/// \p TargetVersion: every distinct deployed version gets its own plan()
/// against the target (so each cohort's flood carries the cheaper of the
/// direct and chained scripts). Returns nullopt when any node runs a
/// version the store cannot plan from.
std::optional<CampaignResult>
planFleetCampaign(const VersionStore &Store, const Topology &T,
                  const std::vector<int> &NodeVersions, int TargetVersion,
                  DiagnosticEngine &Diag,
                  const PacketFormat &Fmt = PacketFormat(),
                  const Mica2Power &Power = Mica2Power(),
                  const RadioChannel &Channel = RadioChannel());

/// FNV-1a hash of \p Text rendered as 16 hex digits (the store's source
/// fingerprint; exposed for tests and tools).
std::string sourceHash(const std::string &Text);

} // namespace ucc

#endif // UCC_CORE_VERSIONSTORE_H
