//===- core/Record.cpp --------------------------------------------------------==//

#include "core/Record.h"

#include "support/ByteStream.h"

using namespace ucc;

int CompilationRecord::findFunction(const std::string &Name) const {
  for (size_t I = 0; I < FunctionNames.size(); ++I)
    if (FunctionNames[I] == Name)
      return static_cast<int>(I);
  return -1;
}

namespace {

void writeMInstr(ByteWriter &W, const MInstr &I) {
  W.writeU8(static_cast<uint8_t>(I.Op));
  W.writeI32(I.A);
  W.writeI32(I.B);
  W.writeI32(I.C);
  W.writeI32(I.VA);
  W.writeI32(I.VB);
  W.writeI32(I.VC);
  W.writeI32(I.Imm);
  W.writeI32(I.Target);
  W.writeI32(I.Callee);
  W.writeI32(I.GlobalIdx);
  W.writeI32(I.FrameIdx);
  W.writeI32(I.IRIndex);
}

MInstr readMInstr(ByteReader &R) {
  MInstr I;
  uint8_t Op = R.readU8();
  if (Op >= static_cast<uint8_t>(MOp::NumOpcodes))
    R.markError(); // corrupt input: not an opcode we ever emit
  I.Op = static_cast<MOp>(Op);
  I.A = R.readI32();
  I.B = R.readI32();
  I.C = R.readI32();
  I.VA = R.readI32();
  I.VB = R.readI32();
  I.VC = R.readI32();
  I.Imm = R.readI32();
  I.Target = R.readI32();
  I.Callee = R.readI32();
  I.GlobalIdx = R.readI32();
  I.FrameIdx = R.readI32();
  I.IRIndex = R.readI32();
  return I;
}

void writeMachineFunction(ByteWriter &W, const MachineFunction &MF) {
  W.writeString(MF.Name);
  W.writeI32(MF.NextVReg);
  W.writeU32(static_cast<uint32_t>(MF.FrameObjects.size()));
  for (const MFrameObject &FO : MF.FrameObjects) {
    W.writeString(FO.Name);
    W.writeI32(FO.SizeWords);
    W.writeU8(FO.IsSpill ? 1 : 0);
  }
  W.writeU32(static_cast<uint32_t>(MF.Blocks.size()));
  for (const MBlock &BB : MF.Blocks) {
    W.writeString(BB.Name);
    W.writeU32(static_cast<uint32_t>(BB.Succs.size()));
    for (int S : BB.Succs)
      W.writeI32(S);
    W.writeU32(static_cast<uint32_t>(BB.Instrs.size()));
    for (const MInstr &I : BB.Instrs)
      writeMInstr(W, I);
  }
}

MachineFunction readMachineFunction(ByteReader &R) {
  MachineFunction MF;
  MF.Name = R.readString();
  MF.NextVReg = R.readI32();
  uint32_t NumFrame = R.readU32();
  for (uint32_t K = 0; K < NumFrame && !R.hadError(); ++K) {
    MFrameObject FO;
    FO.Name = R.readString();
    FO.SizeWords = R.readI32();
    if (FO.SizeWords < 0)
      R.markError(); // a negative size would wrap every layout loop
    FO.IsSpill = R.readU8() != 0;
    MF.FrameObjects.push_back(std::move(FO));
  }
  uint32_t NumBlocks = R.readU32();
  for (uint32_t B = 0; B < NumBlocks && !R.hadError(); ++B) {
    MBlock BB;
    BB.Name = R.readString();
    uint32_t NumSuccs = R.readU32();
    for (uint32_t S = 0; S < NumSuccs && !R.hadError(); ++S) {
      int32_t Succ = R.readI32();
      if (Succ < 0 || static_cast<uint32_t>(Succ) >= NumBlocks)
        R.markError(); // successor must name a block of this function
      BB.Succs.push_back(Succ);
    }
    uint32_t NumInstrs = R.readU32();
    for (uint32_t K = 0; K < NumInstrs && !R.hadError(); ++K)
      BB.Instrs.push_back(readMInstr(R));
    MF.Blocks.push_back(std::move(BB));
  }
  return MF;
}

} // namespace

std::vector<uint8_t> CompilationRecord::serialize() const {
  ByteWriter W;
  W.writeU32(0x55434352); // 'UCCR'
  W.writeU32(static_cast<uint32_t>(FunctionNames.size()));
  for (const std::string &N : FunctionNames)
    W.writeString(N);
  W.writeU32(static_cast<uint32_t>(GlobalNames.size()));
  for (const std::string &N : GlobalNames)
    W.writeString(N);
  W.writeU32(static_cast<uint32_t>(FinalCode.size()));
  for (const MachineFunction &MF : FinalCode)
    writeMachineFunction(W, MF);
  W.writeU32(static_cast<uint32_t>(FrameOffsets.size()));
  for (const std::vector<int> &Offsets : FrameOffsets) {
    W.writeU32(static_cast<uint32_t>(Offsets.size()));
    for (int Off : Offsets)
      W.writeI32(Off);
  }
  W.writeI32(GlobalLayout.Words);
  W.writeU32(static_cast<uint32_t>(GlobalLayout.Entries.size()));
  for (const OldRegionLayout::Entry &E : GlobalLayout.Entries) {
    W.writeString(E.Name);
    W.writeI32(E.Offset);
    W.writeI32(E.SizeWords);
  }
  return W.take();
}

bool CompilationRecord::deserialize(const std::vector<uint8_t> &Bytes,
                                    CompilationRecord &Out) {
  Out = CompilationRecord();
  ByteReader R(Bytes);
  if (R.readU32() != 0x55434352)
    return false;
  uint32_t NumFns = R.readU32();
  for (uint32_t K = 0; K < NumFns && !R.hadError(); ++K)
    Out.FunctionNames.push_back(R.readString());
  uint32_t NumGlobals = R.readU32();
  for (uint32_t K = 0; K < NumGlobals && !R.hadError(); ++K)
    Out.GlobalNames.push_back(R.readString());
  uint32_t NumCode = R.readU32();
  for (uint32_t K = 0; K < NumCode && !R.hadError(); ++K)
    Out.FinalCode.push_back(readMachineFunction(R));
  uint32_t NumFrames = R.readU32();
  for (uint32_t K = 0; K < NumFrames && !R.hadError(); ++K) {
    std::vector<int> Offsets;
    uint32_t N = R.readU32();
    for (uint32_t J = 0; J < N && !R.hadError(); ++J)
      Offsets.push_back(R.readI32());
    Out.FrameOffsets.push_back(std::move(Offsets));
  }
  Out.GlobalLayout.Words = R.readI32();
  uint32_t NumEntries = R.readU32();
  for (uint32_t K = 0; K < NumEntries && !R.hadError(); ++K) {
    OldRegionLayout::Entry E;
    E.Name = R.readString();
    E.Offset = R.readI32();
    E.SizeWords = R.readI32();
    if (E.Offset < 0 || E.SizeWords < 0)
      R.markError();
    Out.GlobalLayout.Entries.push_back(std::move(E));
  }
  if (R.hadError() || !R.atEnd())
    return false;
  // Cross-structure invariants the compiler relies on (Record.h): machine
  // code and frame offsets are parallel to the function-name table.
  return Out.FinalCode.size() == Out.FunctionNames.size() &&
         Out.FrameOffsets.size() == Out.FinalCode.size();
}
