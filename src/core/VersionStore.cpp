//===- core/VersionStore.cpp - versioned compilation artifacts ------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The version chain, its on-disk form, and the direct-vs-chained planner.
/// Persistence is a `manifest.json` (schema_version 1) naming one `vN.img`
/// and `vN.rec` per version, all in the store directory; the manifest also
/// carries the data layout and the parent/script-bytes bookkeeping so
/// `history` listings need no artifact decoding. Commits, loads and plans
/// report to the telemetry registry (`store.*`).
///
//===----------------------------------------------------------------------===//

#include "core/VersionStore.h"

#include "support/Format.h"
#include "support/Json.h"
#include "support/Telemetry.h"

#include <filesystem>
#include <fstream>
#include <map>

using namespace ucc;

std::string ucc::sourceHash(const std::string &Text) {
  uint64_t H = 1469598103934665603ull; // FNV-1a 64-bit
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return format("%016llx", static_cast<unsigned long long>(H));
}

namespace {

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Bytes) {
  std::ofstream OutS(Path, std::ios::binary);
  if (!OutS)
    return false;
  OutS.write(reinterpret_cast<const char *>(Bytes.data()),
             static_cast<std::streamsize>(Bytes.size()));
  return OutS.good();
}

std::string pathJoin(const std::string &Dir, const std::string &Name) {
  return (std::filesystem::path(Dir) / Name).string();
}

} // namespace

std::optional<VersionStore> VersionStore::open(const std::string &Dir,
                                               DiagnosticEngine &Diag) {
  VersionStore S;
  S.Dir = Dir;

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Diag.error({}, "cannot create store directory '" + Dir + "'");
    return std::nullopt;
  }

  std::string ManifestPath = pathJoin(Dir, "manifest.json");
  if (!std::filesystem::exists(ManifestPath))
    return S; // a fresh, empty store

  std::vector<uint8_t> Raw;
  if (!readFileBytes(ManifestPath, Raw)) {
    Diag.error({}, "cannot read '" + ManifestPath + "'");
    return std::nullopt;
  }
  auto Doc = json::parse(std::string(Raw.begin(), Raw.end()));
  if (!Doc || Doc->K != json::Value::Object) {
    Diag.error({}, "'" + ManifestPath + "' is not a JSON object");
    return std::nullopt;
  }
  if (Doc->numberOr("schema_version", 0) != 1) {
    Diag.error({}, "'" + ManifestPath + "': unsupported schema_version");
    return std::nullopt;
  }
  const json::Value *Vs = Doc->find("versions");
  if (!Vs || Vs->K != json::Value::Array) {
    Diag.error({}, "'" + ManifestPath + "': missing versions array");
    return std::nullopt;
  }

  for (const json::Value &Entry : Vs->Arr) {
    if (Entry.K != json::Value::Object) {
      Diag.error({}, "'" + ManifestPath + "': malformed version entry");
      return std::nullopt;
    }
    StoredVersion V;
    V.Id = static_cast<int>(Entry.numberOr("id", -1));
    V.Parent = static_cast<int>(Entry.numberOr("parent", -1));
    V.SourceHash = Entry.stringOr("source_hash", "");
    V.ScriptBytesFromParent = static_cast<size_t>(
        Entry.numberOr("script_bytes_from_parent", 0));
    if (V.Id != static_cast<int>(S.Versions.size())) {
      Diag.error({}, "'" + ManifestPath + "': version ids must be dense");
      return std::nullopt;
    }
    if (V.Parent >= V.Id) {
      Diag.error({}, format("'%s': version %d has invalid parent %d",
                            ManifestPath.c_str(), V.Id, V.Parent));
      return std::nullopt;
    }

    std::string ImgName = Entry.stringOr("image", "");
    std::vector<uint8_t> ImgBytes;
    if (ImgName.empty() ||
        !readFileBytes(pathJoin(Dir, ImgName), ImgBytes) ||
        !BinaryImage::deserialize(ImgBytes, V.Image)) {
      Diag.error({}, format("cannot load image for version %d", V.Id));
      return std::nullopt;
    }
    std::string RecName = Entry.stringOr("record", "");
    std::vector<uint8_t> RecBytes;
    if (RecName.empty() ||
        !readFileBytes(pathJoin(Dir, RecName), RecBytes) ||
        !CompilationRecord::deserialize(RecBytes, V.Record)) {
      Diag.error({}, format("cannot load record for version %d", V.Id));
      return std::nullopt;
    }

    const json::Value *Layout = Entry.find("layout");
    if (!Layout || Layout->K != json::Value::Object) {
      Diag.error({}, format("version %d: missing layout", V.Id));
      return std::nullopt;
    }
    V.Layout.DataWords =
        static_cast<int>(Layout->numberOr("data_words", 0));
    if (const json::Value *Offs = Layout->find("global_offsets");
        Offs && Offs->K == json::Value::Array)
      for (const json::Value &O : Offs->Arr)
        V.Layout.GlobalOffsets.push_back(static_cast<int>(O.Num));

    S.Versions.push_back(std::move(V));
  }
  if (Telemetry *T = currentTelemetry())
    T->addCounter("store.loads", static_cast<int64_t>(S.Versions.size()));
  return S;
}

bool VersionStore::writeManifest(DiagnosticEngine &Diag) const {
  json::Value Doc = json::Value::object();
  Doc.set("schema_version", json::Value::number(1));
  json::Value Vs = json::Value::array();
  for (const StoredVersion &V : Versions) {
    json::Value E = json::Value::object();
    E.set("id", json::Value::number(V.Id));
    E.set("parent", json::Value::number(V.Parent));
    E.set("source_hash", json::Value::string(V.SourceHash));
    E.set("script_bytes_from_parent",
          json::Value::number(static_cast<double>(V.ScriptBytesFromParent)));
    E.set("image", json::Value::string(format("v%d.img", V.Id)));
    E.set("record", json::Value::string(format("v%d.rec", V.Id)));
    json::Value Layout = json::Value::object();
    Layout.set("data_words", json::Value::number(V.Layout.DataWords));
    json::Value Offs = json::Value::array();
    for (int O : V.Layout.GlobalOffsets)
      Offs.Arr.push_back(json::Value::number(O));
    Layout.set("global_offsets", std::move(Offs));
    E.set("layout", std::move(Layout));
    Vs.Arr.push_back(std::move(E));
  }
  Doc.set("versions", std::move(Vs));

  std::string Text = Doc.serialize(2) + "\n";
  if (!writeFileBytes(pathJoin(Dir, "manifest.json"),
                      std::vector<uint8_t>(Text.begin(), Text.end()))) {
    Diag.error({}, "cannot write store manifest in '" + Dir + "'");
    return false;
  }
  return true;
}

bool VersionStore::persist(const StoredVersion &V, DiagnosticEngine &Diag) {
  if (Dir.empty())
    return true;
  if (!writeFileBytes(pathJoin(Dir, format("v%d.img", V.Id)),
                      V.Image.serialize()) ||
      !writeFileBytes(pathJoin(Dir, format("v%d.rec", V.Id)),
                      V.Record.serialize())) {
    Diag.error({}, format("cannot write artifacts for version %d in '%s'",
                          V.Id, Dir.c_str()));
    return false;
  }
  return writeManifest(Diag);
}

int VersionStore::addInitial(const std::string &Source,
                             const CompileOptions &Opts,
                             DiagnosticEngine &Diag) {
  if (!Versions.empty()) {
    Diag.error({}, "store already has an initial version");
    return -1;
  }
  auto Out = Compiler::compile(Source, Opts, Diag);
  if (!Out)
    return -1;
  StoredVersion V;
  V.Id = 0;
  V.Parent = -1;
  V.SourceHash = sourceHash(Source);
  V.Image = std::move(Out->Image);
  V.Record = std::move(Out->Record);
  V.Layout = std::move(Out->Layout);
  Versions.push_back(std::move(V));
  if (!persist(Versions.back(), Diag)) {
    Versions.pop_back();
    return -1;
  }
  telemetryCount("store.commits");
  return 0;
}

int VersionStore::addUpdate(const std::string &Source,
                            const CompileOptions &Opts,
                            DiagnosticEngine &Diag, int ParentId) {
  const StoredVersion *P =
      ParentId < 0 ? latest() : find(ParentId);
  if (!P) {
    Diag.error({}, ParentId < 0
                       ? std::string("store is empty; commit an initial "
                                     "version first")
                       : format("unknown parent version %d", ParentId));
    return -1;
  }
  auto Out = Compiler::recompile(Source, P->Record, Opts, Diag);
  if (!Out)
    return -1;
  StoredVersion V;
  V.Id = static_cast<int>(Versions.size());
  V.Parent = P->Id;
  V.SourceHash = sourceHash(Source);
  V.ScriptBytesFromParent =
      makeImageUpdate(P->Image, Out->Image, Opts.Jobs).scriptBytes();
  V.Image = std::move(Out->Image);
  V.Record = std::move(Out->Record);
  V.Layout = std::move(Out->Layout);
  Versions.push_back(std::move(V));
  if (!persist(Versions.back(), Diag)) {
    Versions.pop_back();
    return -1;
  }
  telemetryCount("store.commits");
  return Versions.back().Id;
}

const StoredVersion *VersionStore::find(int Id) const {
  if (Id < 0 || static_cast<size_t>(Id) >= Versions.size())
    return nullptr;
  return &Versions[static_cast<size_t>(Id)];
}

const StoredVersion *VersionStore::latest() const {
  return Versions.empty() ? nullptr : &Versions.back();
}

std::vector<int> VersionStore::children(int Id) const {
  std::vector<int> Out;
  for (const StoredVersion &V : Versions)
    if (V.Parent == Id)
      Out.push_back(V.Id);
  return Out;
}

std::vector<int> VersionStore::tips() const {
  std::vector<bool> HasChild(Versions.size(), false);
  for (const StoredVersion &V : Versions)
    if (V.Parent >= 0 && static_cast<size_t>(V.Parent) < Versions.size())
      HasChild[static_cast<size_t>(V.Parent)] = true;
  std::vector<int> Out;
  for (const StoredVersion &V : Versions)
    if (!HasChild[static_cast<size_t>(V.Id)])
      Out.push_back(V.Id);
  return Out;
}

std::optional<UpdatePlan> ucc::planBetweenVersions(
    const std::function<const StoredVersion *(int)> &Find, int FromId,
    int ToId) {
  const StoredVersion *From = Find(FromId);
  const StoredVersion *To = Find(ToId);
  if (!From || !To)
    return std::nullopt;

  ScopedSpan Span("store.plan");
  UpdatePlan P;
  P.From = FromId;
  P.To = ToId;

  ImageUpdate Direct = makeImageUpdate(From->Image, To->Image);
  P.DirectBytes = Direct.scriptBytes();

  // The version graph is a parent forest — every version has at most one
  // parent — so any two connected versions are joined by exactly one
  // simple path: up from From to their lowest common ancestor, then down
  // to To. That path is what a cost-based shortest-path search over the
  // DAG returns (each stored edge carries its script-bytes cost, and a
  // tree admits no alternative), which covers upgrades, rollbacks, and
  // cross-branch hops alike. The fresh endpoint diff competes as an
  // always-present direct edge; the final call compares ACTUAL composed
  // bytes against direct bytes, not the per-step cost sum, because
  // composition cancels edits that later steps undo.
  std::vector<int> Path; // From -> ... -> To, endpoints included
  {
    std::map<int, size_t> UpIndex; // ancestor id -> hops above From
    std::vector<int> Up;
    for (int At = FromId; At >= 0;) {
      UpIndex[At] = Up.size();
      Up.push_back(At);
      const StoredVersion *V = Find(At);
      if (!V)
        break;
      At = V->Parent;
    }
    std::vector<int> Down; // To -> ... -> LCA child
    int Lca = -1;
    for (int At = ToId; At >= 0;) {
      if (auto It = UpIndex.find(At); It != UpIndex.end()) {
        Lca = At;
        break;
      }
      Down.push_back(At);
      const StoredVersion *V = Find(At);
      if (!V)
        break;
      At = V->Parent;
    }
    if (Lca >= 0) {
      for (size_t I = 0; I <= UpIndex[Lca]; ++I)
        Path.push_back(Up[I]);
      for (size_t I = Down.size(); I-- > 0;)
        Path.push_back(Down[I]);
    }
  }
  bool HasChain = Path.size() >= 2;

  ImageUpdate Chained;
  if (HasChain) {
    bool First = true;
    for (size_t I = 1; I < Path.size(); ++I) {
      ImageUpdate Step = makeImageUpdate(Find(Path[I - 1])->Image,
                                         Find(Path[I])->Image);
      if (First) {
        Chained = std::move(Step);
        First = false;
      } else {
        ImageUpdate Combined;
        if (!composeImageUpdates(From->Image, Chained, Step, Combined))
          return std::nullopt;
        Chained = std::move(Combined);
      }
    }
    P.ChainSteps = static_cast<int>(Path.size()) - 1;
    P.ChainedBytes = Chained.scriptBytes();
  }

  if (HasChain && P.ChainedBytes < P.DirectBytes) {
    P.Route = UpdatePlan::RouteKind::Chained;
    P.Update = std::move(Chained);
    P.ScriptBytes = P.ChainedBytes;
  } else {
    P.Route = UpdatePlan::RouteKind::Direct;
    P.Update = std::move(Direct);
    P.ScriptBytes = P.DirectBytes;
  }

  if (Telemetry *T = currentTelemetry()) {
    T->addCounter("store.plans");
    T->addCounter(P.Route == UpdatePlan::RouteKind::Direct
                      ? "store.plans_direct"
                      : "store.plans_chained");
  }
  return P;
}

std::optional<UpdatePlan> VersionStore::plan(int FromId, int ToId) const {
  return planBetweenVersions([this](int Id) { return find(Id); }, FromId,
                             ToId);
}

UpdateSession::UpdateSession(VersionStore &Store, CompileOptions Opts)
    : Store(Store), Opts(std::move(Opts)) {
  if (!this->Opts.Cache) {
    Cache = std::make_unique<CompileCache>();
    this->Opts.Cache = Cache.get();
  }
}

UpdateSession::~UpdateSession() = default;

int UpdateSession::commit(const std::string &Source,
                          DiagnosticEngine &Diag) {
  return Store.size() == 0 ? Store.addInitial(Source, Opts, Diag)
                           : Store.addUpdate(Source, Opts, Diag);
}

CompileCacheStats UpdateSession::compileCacheStats() const {
  return Opts.Cache ? Opts.Cache->stats() : CompileCacheStats{};
}

std::optional<UpdatePlan> UpdateSession::planFromPrevious() const {
  if (Store.size() < 2)
    return std::nullopt;
  const StoredVersion *Tip = Store.latest();
  return Store.plan(Tip->Parent, Tip->Id);
}

std::optional<CampaignResult>
ucc::planFleetCampaign(const VersionStore &Store, const Topology &T,
                       const std::vector<int> &NodeVersions,
                       int TargetVersion, DiagnosticEngine &Diag,
                       const PacketFormat &Fmt, const Mica2Power &Power,
                       const RadioChannel &Channel) {
  if (!Store.find(TargetVersion)) {
    Diag.error({}, format("unknown target version %d", TargetVersion));
    return std::nullopt;
  }
  // Plan once per distinct stale version before any flood: a campaign
  // either fully plans or does not run.
  std::vector<int> Stale = staleVersions(NodeVersions, TargetVersion);
  std::map<int, size_t> BytesFor;
  for (int V : Stale) {
    auto P = Store.plan(V, TargetVersion);
    if (!P) {
      Diag.error({}, format("cannot plan update %d -> %d", V,
                            TargetVersion));
      return std::nullopt;
    }
    BytesFor[V] = P->ScriptBytes;
  }
  return runUpdateCampaign(
      T, NodeVersions, TargetVersion,
      [&](int From) { return BytesFor.at(From); }, Fmt, Power, Channel);
}
