//===- analysis/Dataflow.h - generic backward liveness ---------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic backward liveness over an abstract CFG of def/use lists. Both
/// the IR (virtual registers) and the machine layer (virtual + physical
/// registers) instantiate this with an adapter, so the fixpoint logic lives
/// in exactly one place.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_ANALYSIS_DATAFLOW_H
#define UCC_ANALYSIS_DATAFLOW_H

#include "support/BitVector.h"

#include <vector>

namespace ucc {

/// Registers defined and used by one abstract instruction.
struct DefUse {
  std::vector<int> Defs;
  std::vector<int> Uses;
};

/// One abstract CFG block: instruction def/use lists plus successor block
/// indices.
struct FlowBlock {
  std::vector<DefUse> Instrs;
  std::vector<int> Succs;
};

/// An abstract CFG over \c NumValues distinct registers/values.
struct FlowGraph {
  std::vector<FlowBlock> Blocks;
  int NumValues = 0;
};

/// Result of the liveness fixpoint: per-block live-in/live-out sets.
struct Liveness {
  std::vector<BitVector> LiveIn;
  std::vector<BitVector> LiveOut;

  /// Per-instruction live-after sets for block \p B: element K holds the
  /// values live immediately *after* instruction K of the block.
  std::vector<BitVector> liveAfterPerInstr(const FlowGraph &G, int B) const;
};

/// Runs backward liveness to a fixpoint over \p G.
Liveness computeLiveness(const FlowGraph &G);

} // namespace ucc

#endif // UCC_ANALYSIS_DATAFLOW_H
