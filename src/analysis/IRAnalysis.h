//===- analysis/IRAnalysis.h - IR-level analyses ---------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR-level analysis helpers: def/use extraction, liveness adapter, loop
/// depth estimation and the static execution-frequency estimate `freq(s)`
/// the paper's objective function consumes.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_ANALYSIS_IRANALYSIS_H
#define UCC_ANALYSIS_IRANALYSIS_H

#include "analysis/Dataflow.h"
#include "ir/IR.h"

#include <vector>

namespace ucc {

/// Virtual registers defined by \p I (at most one at the IR level).
std::vector<int> irDefs(const Instr &I);
/// Virtual registers used by \p I.
std::vector<int> irUses(const Instr &I);

/// Builds the abstract CFG for liveness over \p F's virtual registers.
FlowGraph buildFlowGraph(const Function &F);

/// Estimates the loop-nesting depth of every block.
///
/// The frontend emits blocks in structured order, so a branch to an
/// earlier block is a loop back edge; the natural loop spans the layout
/// range [target, source]. This matches the structured CFGs MiniC
/// produces; irreducible graphs would only over-approximate.
std::vector<int> loopDepths(const Function &F);

/// Static execution-frequency estimate per block: 10^depth, capped at
/// \p Cap. This is the paper's `freq(s)` when no dynamic profile exists.
std::vector<double> blockFrequencies(const Function &F, double Cap = 1e6);

/// `freq(s)` per IR statement, indexed by the statement's block-major
/// position (the IRIndex carried by machine instructions).
std::vector<double> statementFrequencies(const Function &F, double Cap = 1e6);

} // namespace ucc

#endif // UCC_ANALYSIS_IRANALYSIS_H
