//===- analysis/Dataflow.cpp ------------------------------------------------==//

#include "analysis/Dataflow.h"

#include <cassert>

using namespace ucc;

Liveness ucc::computeLiveness(const FlowGraph &G) {
  size_t NumBlocks = G.Blocks.size();
  size_t NumValues = static_cast<size_t>(G.NumValues);

  Liveness L;
  L.LiveIn.assign(NumBlocks, BitVector(NumValues));
  L.LiveOut.assign(NumBlocks, BitVector(NumValues));

  // Per-block gen (upward-exposed uses) and kill (defs) sets.
  std::vector<BitVector> Gen(NumBlocks, BitVector(NumValues));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumValues));
  for (size_t B = 0; B < NumBlocks; ++B) {
    for (const DefUse &I : G.Blocks[B].Instrs) {
      for (int U : I.Uses)
        if (!Kill[B].test(static_cast<size_t>(U)))
          Gen[B].set(static_cast<size_t>(U));
      for (int D : I.Defs)
        Kill[B].set(static_cast<size_t>(D));
    }
  }

  // Classic round-robin fixpoint; backward problems converge fastest when
  // iterating blocks in reverse layout order.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t BI = NumBlocks; BI-- > 0;) {
      BitVector Out(NumValues);
      for (int S : G.Blocks[BI].Succs) {
        assert(S >= 0 && static_cast<size_t>(S) < NumBlocks &&
               "bad successor index");
        Out.unionWith(L.LiveIn[static_cast<size_t>(S)]);
      }
      if (!(Out == L.LiveOut[BI])) {
        L.LiveOut[BI] = Out;
        Changed = true;
      }
      // LiveIn = Gen | (Out - Kill)
      Out.subtract(Kill[BI]);
      Out.unionWith(Gen[BI]);
      if (!(Out == L.LiveIn[BI])) {
        L.LiveIn[BI] = std::move(Out);
        Changed = true;
      }
    }
  }
  return L;
}

std::vector<BitVector> Liveness::liveAfterPerInstr(const FlowGraph &G,
                                                   int B) const {
  const FlowBlock &Block = G.Blocks[static_cast<size_t>(B)];
  size_t N = Block.Instrs.size();
  std::vector<BitVector> Result(N, BitVector(LiveOut[0].size()));
  BitVector Live = LiveOut[static_cast<size_t>(B)];
  for (size_t K = N; K-- > 0;) {
    Result[K] = Live;
    const DefUse &I = Block.Instrs[K];
    for (int D : I.Defs)
      Live.reset(static_cast<size_t>(D));
    for (int U : I.Uses)
      Live.set(static_cast<size_t>(U));
  }
  return Result;
}
