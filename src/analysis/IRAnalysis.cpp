//===- analysis/IRAnalysis.cpp ----------------------------------------------==//

#include "analysis/IRAnalysis.h"

#include <algorithm>
#include <cmath>

using namespace ucc;

std::vector<int> ucc::irDefs(const Instr &I) {
  if (I.hasDst())
    return {I.Dst};
  return {};
}

std::vector<int> ucc::irUses(const Instr &I) {
  std::vector<int> Uses;
  Uses.reserve(I.Srcs.size());
  for (VReg S : I.Srcs)
    Uses.push_back(S);
  return Uses;
}

FlowGraph ucc::buildFlowGraph(const Function &F) {
  FlowGraph G;
  G.NumValues = F.NumVRegs;
  G.Blocks.reserve(F.Blocks.size());
  for (const BasicBlock &BB : F.Blocks) {
    FlowBlock FB;
    FB.Succs = BB.successors();
    FB.Instrs.reserve(BB.Instrs.size());
    for (const Instr &I : BB.Instrs)
      FB.Instrs.push_back(DefUse{irDefs(I), irUses(I)});
    G.Blocks.push_back(std::move(FB));
  }
  return G;
}

std::vector<int> ucc::loopDepths(const Function &F) {
  size_t N = F.Blocks.size();
  std::vector<int> Depth(N, 0);
  // Every back edge source -> target (target earlier in layout) nests the
  // layout range [target, source] one level deeper.
  for (size_t B = 0; B < N; ++B) {
    for (int S : F.Blocks[B].successors()) {
      if (S < 0 || static_cast<size_t>(S) > B)
        continue;
      for (size_t K = static_cast<size_t>(S); K <= B; ++K)
        ++Depth[K];
    }
  }
  return Depth;
}

std::vector<double> ucc::blockFrequencies(const Function &F, double Cap) {
  std::vector<int> Depth = loopDepths(F);
  std::vector<double> Freq(Depth.size(), 1.0);
  for (size_t B = 0; B < Depth.size(); ++B)
    Freq[B] = std::min(Cap, std::pow(10.0, Depth[B]));
  return Freq;
}

std::vector<double> ucc::statementFrequencies(const Function &F, double Cap) {
  std::vector<double> BlockFreq = blockFrequencies(F, Cap);
  std::vector<double> Freq;
  Freq.reserve(static_cast<size_t>(F.instrCount()));
  for (size_t B = 0; B < F.Blocks.size(); ++B)
    for (size_t K = 0; K < F.Blocks[B].Instrs.size(); ++K)
      Freq.push_back(BlockFreq[B]);
  return Freq;
}
