//===- diff/ImageDiff.cpp - whole-image diffing and update packages -------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function-granular image diffing, update-package construction (runs under
/// the `diff` telemetry span; per-script byte accounting happens inside
/// makeEditScript), the package wire format, the sensor-side applier, and
/// the out-of-order group assembler.
///
//===----------------------------------------------------------------------===//

#include "diff/ImageDiff.h"

#include "support/ByteStream.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <cassert>

using namespace ucc;

int ImageDiff::totalDiffInst() const {
  int N = 0;
  for (const FunctionDiff &F : Functions)
    N += F.diffInst();
  return N;
}

int ImageDiff::totalMatched() const {
  int N = 0;
  for (const FunctionDiff &F : Functions)
    N += F.Matched;
  return N;
}

int ImageDiff::totalNewCount() const {
  int N = 0;
  for (const FunctionDiff &F : Functions)
    N += F.NewCount;
  return N;
}

const FunctionDiff *ImageDiff::find(const std::string &Name) const {
  for (const FunctionDiff &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

ImageDiff ucc::diffImages(const BinaryImage &Old, const BinaryImage &New,
                          int Jobs) {
  ImageDiff Out;
  // Each function is an independent alignment problem; fan out over the
  // pool, writing results by index so the order (and the telemetry merge,
  // see support/ThreadPool.h) is deterministic for every job count.
  int NumFns = static_cast<int>(New.Functions.size());
  Out.Functions.resize(static_cast<size_t>(NumFns));
  parallelFor(NumFns, Jobs, [&](int F) {
    FunctionDiff &FD = Out.Functions[static_cast<size_t>(F)];
    FD.Name = New.Functions[static_cast<size_t>(F)].Name;
    std::vector<uint32_t> NewCode = New.functionCode(F);
    FD.NewCount = static_cast<int>(NewCode.size());

    int OldIdx = Old.findFunction(FD.Name);
    if (OldIdx >= 0) {
      std::vector<uint32_t> OldCode = Old.functionCode(OldIdx);
      FD.OldCount = static_cast<int>(OldCode.size());
      FD.Matched = static_cast<int>(alignWords(OldCode, NewCode).size());
    }
  });
  // Removed functions (present old, absent new) need no transmission, but
  // record them for completeness.
  for (size_t F = 0; F < Old.Functions.size(); ++F) {
    if (New.findFunction(Old.Functions[F].Name) >= 0)
      continue;
    FunctionDiff FD;
    FD.Name = Old.Functions[F].Name;
    FD.OldCount = static_cast<int>(Old.Functions[F].Count);
    Out.Functions.push_back(std::move(FD));
  }

  // Data-segment delta in words.
  size_t Common = std::min(Old.DataInit.size(), New.DataInit.size());
  for (size_t K = 0; K < Common; ++K)
    if (Old.DataInit[K] != New.DataInit[K])
      ++Out.DataWordsChanged;
  Out.DataWordsChanged += static_cast<int>(
      std::max(Old.DataInit.size(), New.DataInit.size()) - Common);
  return Out;
}

size_t ImageUpdate::scriptBytes() const {
  size_t Bytes = 0;
  for (const FunctionUpdate &F : Functions) {
    Bytes += 1; // function-table entry (old index or new marker)
    if (F.IsNew)
      Bytes += F.Name.size() + 1 + F.NewCode.size() * 4;
    else
      Bytes += F.Script.encodedBytes();
  }
  Bytes += DataScript.encodedBytes();
  Bytes += 1; // entry function index
  return Bytes;
}

std::vector<uint8_t> ImageUpdate::serialize() const {
  ByteWriter W;
  W.writeU32(0x55504454); // 'UPDT'
  W.writeI32(EntryFunc);
  W.writeU32(static_cast<uint32_t>(Functions.size()));
  for (const FunctionUpdate &F : Functions) {
    W.writeString(F.Name);
    W.writeU8(F.IsNew ? 1 : 0);
    if (F.IsNew) {
      W.writeU32(static_cast<uint32_t>(F.NewCode.size()));
      for (uint32_t Word : F.NewCode)
        W.writeU32(Word);
    } else {
      std::vector<uint8_t> Script = F.Script.encode();
      W.writeU32(static_cast<uint32_t>(Script.size()));
      W.writeBytes(Script);
    }
  }
  std::vector<uint8_t> Data = DataScript.encode();
  W.writeU32(static_cast<uint32_t>(Data.size()));
  W.writeBytes(Data);
  return W.take();
}

bool ImageUpdate::deserialize(const std::vector<uint8_t> &Bytes,
                              ImageUpdate &Out) {
  Out = ImageUpdate();
  ByteReader R(Bytes);
  if (R.readU32() != 0x55504454)
    return false;
  Out.EntryFunc = R.readI32();
  uint32_t NumFns = R.readU32();
  for (uint32_t K = 0; K < NumFns && !R.hadError(); ++K) {
    FunctionUpdate F;
    F.Name = R.readString();
    F.IsNew = R.readU8() != 0;
    if (F.IsNew) {
      uint32_t Count = R.readU32();
      for (uint32_t J = 0; J < Count && !R.hadError(); ++J)
        F.NewCode.push_back(R.readU32());
    } else {
      uint32_t Len = R.readU32();
      std::vector<uint8_t> Script = R.readBytes(Len);
      if (!EditScript::decode(Script, F.Script))
        return false;
    }
    Out.Functions.push_back(std::move(F));
  }
  uint32_t DataLen = R.readU32();
  std::vector<uint8_t> Data = R.readBytes(DataLen);
  if (!EditScript::decode(Data, Out.DataScript))
    return false;
  return !R.hadError() && R.atEnd();
}

ImageUpdate ucc::makeImageUpdate(const BinaryImage &Old,
                                 const BinaryImage &New, int Jobs) {
  ScopedSpan Span("diff");
  ImageUpdate U;
  U.EntryFunc = New.EntryFunc;
  // Per-function scripts are independent; diff them across the pool and
  // land each in its slot. parallelFor merges the workers' telemetry in
  // item order, so package bytes *and* diff.* counters match --jobs 1.
  int NumFns = static_cast<int>(New.Functions.size());
  U.Functions.resize(static_cast<size_t>(NumFns));
  parallelFor(NumFns, Jobs, [&](int F) {
    ImageUpdate::FunctionUpdate &FU = U.Functions[static_cast<size_t>(F)];
    FU.Name = New.Functions[static_cast<size_t>(F)].Name;
    std::vector<uint32_t> NewCode = New.functionCode(F);
    int OldIdx = Old.findFunction(FU.Name);
    if (OldIdx < 0) {
      FU.IsNew = true;
      FU.NewCode = std::move(NewCode);
    } else {
      FU.Script = makeEditScript(Old.functionCode(OldIdx), NewCode);
    }
  });

  auto toWords = [](const std::vector<int16_t> &Data) {
    std::vector<uint32_t> Words(Data.size());
    for (size_t K = 0; K < Data.size(); ++K)
      Words[K] = static_cast<uint16_t>(Data[K]);
    return Words;
  };
  U.DataScript = makeEditScript(toWords(Old.DataInit), toWords(New.DataInit));
  return U;
}

bool ucc::composeImageUpdates(const BinaryImage &Base,
                              const ImageUpdate &First,
                              const ImageUpdate &Second, ImageUpdate &Out) {
  Out = ImageUpdate();
  BinaryImage Mid;
  if (!applyUpdate(Base, First, Mid))
    return false;

  // First's entries are the functions of Mid, in Mid's order.
  auto firstEntry =
      [&](const std::string &Name) -> const ImageUpdate::FunctionUpdate * {
    for (const ImageUpdate::FunctionUpdate &F : First.Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  };

  Out.EntryFunc = Second.EntryFunc;
  for (const ImageUpdate::FunctionUpdate &F2 : Second.Functions) {
    ImageUpdate::FunctionUpdate FU;
    FU.Name = F2.Name;
    if (F2.IsNew) {
      // Introduced by the second step: ships whole either way.
      FU.IsNew = true;
      FU.NewCode = F2.NewCode;
    } else {
      const ImageUpdate::FunctionUpdate *F1 = firstEntry(F2.Name);
      int MidIdx = Mid.findFunction(F2.Name);
      if (!F1 || MidIdx < 0)
        return false;
      if (F1->IsNew) {
        // Introduced by the first step: relative to Base it is still new;
        // push it forward through the second step's script.
        std::vector<uint32_t> FinalCode;
        if (!applyEditScript(Mid.functionCode(MidIdx), F2.Script,
                             FinalCode))
          return false;
        FU.IsNew = true;
        FU.NewCode = std::move(FinalCode);
      } else {
        int BaseIdx = Base.findFunction(F2.Name);
        if (BaseIdx < 0 ||
            !composeEditScripts(Base.functionCode(BaseIdx), F1->Script,
                                F2.Script, FU.Script))
          return false;
      }
    }
    Out.Functions.push_back(std::move(FU));
  }

  std::vector<uint32_t> BaseData(Base.DataInit.size());
  for (size_t K = 0; K < Base.DataInit.size(); ++K)
    BaseData[K] = static_cast<uint16_t>(Base.DataInit[K]);
  return composeEditScripts(BaseData, First.DataScript, Second.DataScript,
                            Out.DataScript);
}

std::vector<UpdateGroup> ucc::splitIntoGroups(const ImageUpdate &Update) {
  int Total = static_cast<int>(Update.Functions.size()) + 1;
  std::vector<UpdateGroup> Groups;
  Groups.reserve(static_cast<size_t>(Total));
  for (size_t F = 0; F < Update.Functions.size(); ++F) {
    UpdateGroup G;
    G.SeqNo = static_cast<int>(F);
    G.TotalGroups = Total;
    G.Fn = Update.Functions[F];
    Groups.push_back(std::move(G));
  }
  UpdateGroup Data;
  Data.SeqNo = Total - 1;
  Data.TotalGroups = Total;
  Data.IsData = true;
  Data.DataScript = Update.DataScript;
  Data.EntryFunc = Update.EntryFunc;
  Groups.push_back(std::move(Data));
  return Groups;
}

bool UpdateAssembler::accept(const UpdateGroup &Group) {
  if (Group.TotalGroups <= 0 || Group.SeqNo < 0 ||
      Group.SeqNo >= Group.TotalGroups)
    return false;
  if (Expected < 0) {
    Expected = Group.TotalGroups;
    Seen.assign(static_cast<size_t>(Expected), false);
    Groups.resize(static_cast<size_t>(Expected));
  }
  if (Group.TotalGroups != Expected)
    return false; // belongs to a different update
  Seen[static_cast<size_t>(Group.SeqNo)] = true;
  Groups[static_cast<size_t>(Group.SeqNo)] = Group;
  return true;
}

bool UpdateAssembler::complete() const {
  if (Expected < 0)
    return false;
  for (bool B : Seen)
    if (!B)
      return false;
  return true;
}

bool UpdateAssembler::materialize(BinaryImage &Out) const {
  if (!complete())
    return false;
  ImageUpdate Update;
  for (const UpdateGroup &G : Groups) {
    if (G.IsData) {
      Update.DataScript = G.DataScript;
      Update.EntryFunc = G.EntryFunc;
    } else {
      Update.Functions.push_back(G.Fn);
    }
  }
  return applyUpdate(Old, Update, Out);
}

bool ucc::applyUpdate(const BinaryImage &Old, const ImageUpdate &Update,
                      BinaryImage &Out) {
  Out = BinaryImage();
  Out.EntryFunc = Update.EntryFunc;
  for (const ImageUpdate::FunctionUpdate &FU : Update.Functions) {
    std::vector<uint32_t> Code;
    if (FU.IsNew) {
      Code = FU.NewCode;
    } else {
      int OldIdx = Old.findFunction(FU.Name);
      if (OldIdx < 0)
        return false;
      if (!applyEditScript(Old.functionCode(OldIdx), FU.Script, Code))
        return false;
    }
    FunctionSpan Span;
    Span.Name = FU.Name;
    Span.Start = static_cast<uint32_t>(Out.Code.size());
    Span.Count = static_cast<uint32_t>(Code.size());
    Out.Functions.push_back(std::move(Span));
    Out.Code.insert(Out.Code.end(), Code.begin(), Code.end());
  }

  std::vector<uint32_t> OldData(Old.DataInit.size());
  for (size_t K = 0; K < Old.DataInit.size(); ++K)
    OldData[K] = static_cast<uint16_t>(Old.DataInit[K]);
  std::vector<uint32_t> NewData;
  if (!applyEditScript(OldData, Update.DataScript, NewData))
    return false;
  Out.DataInit.resize(NewData.size());
  for (size_t K = 0; K < NewData.size(); ++K)
    Out.DataInit[K] = static_cast<int16_t>(NewData[K]);
  return true;
}
