//===- diff/ImageDiff.h - whole-image diffing and update packages ---------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function-granular diffing of two binary images and the full update
/// package a sink disseminates: per-function edit scripts (functions are
/// aligned by name; SAVR encodes branch targets function-relative and calls
/// by table index, so surviving functions diff cleanly no matter how their
/// neighbors grew), the new function order, the data-segment delta and the
/// entry point. `applyUpdate` is the complete sensor-side reprogramming
/// step; the tests verify it reproduces the freshly compiled image bit for
/// bit.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_DIFF_IMAGEDIFF_H
#define UCC_DIFF_IMAGEDIFF_H

#include "codegen/BinaryImage.h"
#include "diff/EditScript.h"

#include <string>
#include <vector>

namespace ucc {

/// Diff metrics for one function (aligned by name).
struct FunctionDiff {
  std::string Name;
  int OldCount = 0; ///< instructions in the old version (0 = new function)
  int NewCount = 0; ///< instructions in the new version (0 = removed)
  int Matched = 0;  ///< LCS-matched (reused) instructions

  /// The paper's Diff_inst: instructions of the new version that must be
  /// transmitted.
  int diffInst() const { return NewCount - Matched; }
};

/// Diff metrics for a whole image.
struct ImageDiff {
  std::vector<FunctionDiff> Functions;
  int DataWordsChanged = 0;

  int totalDiffInst() const;
  int totalMatched() const;
  int totalNewCount() const;
  const FunctionDiff *find(const std::string &Name) const;
};

/// Computes per-function diff metrics between two images. Functions are
/// aligned on up to \p Jobs threads (0 = ThreadPool::defaultJobs()); the
/// result and all telemetry counters are independent of the job count.
ImageDiff diffImages(const BinaryImage &Old, const BinaryImage &New,
                     int Jobs = 0);

/// The transmissible update package.
struct ImageUpdate {
  /// One entry per function of the *new* image, in order.
  struct FunctionUpdate {
    std::string Name;
    bool IsNew = false;      ///< no old function of this name
    EditScript Script;       ///< vs. the old function (empty for IsNew)
    std::vector<uint32_t> NewCode; ///< full code when IsNew
  };
  std::vector<FunctionUpdate> Functions;
  EditScript DataScript; ///< transforms the old DataInit (as words)
  int EntryFunc = -1;

  /// Total bytes on air: scripts + new-function code + bookkeeping bytes
  /// (1 byte per function-table entry + names of new functions).
  size_t scriptBytes() const;

  /// Wire format for storing/disseminating the package.
  std::vector<uint8_t> serialize() const;
  static bool deserialize(const std::vector<uint8_t> &Bytes,
                          ImageUpdate &Out);
};

/// Builds the update package turning \p Old into \p New. Per-function
/// scripts are diffed on up to \p Jobs threads (0 =
/// ThreadPool::defaultJobs()) and merged in function order, so the
/// package bytes and the `diff.*` counters are identical for every job
/// count.
ImageUpdate makeImageUpdate(const BinaryImage &Old, const BinaryImage &New,
                            int Jobs = 0);

/// Composes two update packages: \p Out turns \p Base directly into the
/// image that applying \p First and then \p Second yields. Per-function
/// scripts compose pairwise (composeEditScripts), so a word ships only if
/// it survived the whole chain; functions introduced mid-chain ship as
/// full code. This is the stepwise route a version-chain planner compares
/// against a fresh endpoint diff. Returns false when either package does
/// not apply.
bool composeImageUpdates(const BinaryImage &Base, const ImageUpdate &First,
                         const ImageUpdate &Second, ImageUpdate &Out);

/// Sensor-side reprogramming: applies \p Update to \p Old. Returns false if
/// the package does not fit the old image.
bool applyUpdate(const BinaryImage &Old, const ImageUpdate &Update,
                 BinaryImage &Out);

//===----------------------------------------------------------------------===//
// Out-of-order dissemination (section 2.2)
//===----------------------------------------------------------------------===//
//
// "The packets may also be grouped so that when remote sensors receive
// groups out of order, they are still able to perform updates independent
// of the receiving order." An ImageUpdate splits into one group per
// function plus one group for the data segment and entry point; an
// UpdateAssembler on the sensor accepts groups in any order (duplicates
// are idempotent) and materializes the new image once all have arrived.

/// One independently applicable piece of an update.
struct UpdateGroup {
  int SeqNo = 0;       ///< position of this group within the update
  int TotalGroups = 0; ///< how many groups make up the whole update
  bool IsData = false; ///< data-segment + entry group (always the last)
  ImageUpdate::FunctionUpdate Fn; ///< valid when !IsData
  EditScript DataScript;          ///< valid when IsData
  int EntryFunc = -1;             ///< valid when IsData
};

/// Splits \p Update into its groups (functions in order, data last).
std::vector<UpdateGroup> splitIntoGroups(const ImageUpdate &Update);

/// Reassembles an update from groups arriving in arbitrary order.
class UpdateAssembler {
public:
  explicit UpdateAssembler(const BinaryImage &Old) : Old(Old) {}

  /// Accepts one group. Duplicate deliveries are fine; groups belonging
  /// to a different update (mismatched TotalGroups) are rejected.
  bool accept(const UpdateGroup &Group);

  /// True once every group of the update has arrived.
  bool complete() const;

  /// Builds the updated image. Requires complete().
  bool materialize(BinaryImage &Out) const;

private:
  const BinaryImage &Old;
  int Expected = -1;
  std::vector<bool> Seen;
  std::vector<UpdateGroup> Groups;
};

} // namespace ucc

#endif // UCC_DIFF_IMAGEDIFF_H
