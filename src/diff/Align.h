//===- diff/Align.h - generic LCS alignment --------------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic longest-common-subsequence alignment over an arbitrary equality
/// predicate. The word-level binary differ and UCC-RA's machine-instruction
/// aligner both build on this.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_DIFF_ALIGN_H
#define UCC_DIFF_ALIGN_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ucc {

/// Cell cap for lcsAlign's quadratic table, matching EditScript.h's
/// ExactAlignCellCap. Callers with larger inputs must use the engine
/// behind `alignWords` (or chunk the problem) instead.
constexpr size_t LcsAlignCellCap = size_t(1) << 28;

/// Computes an LCS alignment between sequences of lengths \p M and \p N
/// under \p Equal(i, j). Returns matched index pairs, strictly increasing
/// in both components. O(M*N) time and space; inputs must keep
/// (M+1)*(N+1) within LcsAlignCellCap (asserted — callers at risk of
/// larger inputs should pre-check or use `alignWords`).
template <typename EqualFn>
std::vector<std::pair<int, int>> lcsAlign(size_t M, size_t N, EqualFn Equal) {
  assert(M + 1 <= LcsAlignCellCap / (N + 1) &&
         "lcsAlign table above LcsAlignCellCap; use alignWords instead");
  std::vector<uint32_t> Table((M + 1) * (N + 1), 0);
  auto At = [&](size_t I, size_t J) -> uint32_t & {
    return Table[I * (N + 1) + J];
  };
  for (size_t I = M; I-- > 0;) {
    for (size_t J = N; J-- > 0;) {
      if (Equal(I, J))
        At(I, J) = At(I + 1, J + 1) + 1;
      else
        At(I, J) = std::max(At(I + 1, J), At(I, J + 1));
    }
  }
  std::vector<std::pair<int, int>> Matches;
  size_t I = 0, J = 0;
  while (I < M && J < N) {
    if (Equal(I, J)) {
      Matches.push_back({static_cast<int>(I), static_cast<int>(J)});
      ++I;
      ++J;
    } else if (At(I + 1, J) >= At(I, J + 1)) {
      ++I;
    } else {
      ++J;
    }
  }
  return Matches;
}

} // namespace ucc

#endif // UCC_DIFF_ALIGN_H
