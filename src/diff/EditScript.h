//===- diff/EditScript.h - edit scripts over instruction words ------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary diffing and edit scripts, operating on 4-byte SAVR instruction
/// words. The script language is the paper's (section 2.2): four primitives
/// — copy / remove (one byte each, carrying a length) and insert / replace
/// (a one-byte opcode followed by the raw instruction words). The encoded
/// script is what gets transmitted over the WSN; its byte size drives the
/// transmission-energy term of every experiment.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_DIFF_EDITSCRIPT_H
#define UCC_DIFF_EDITSCRIPT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ucc {

/// The four update primitives of section 2.2.
enum class EditOp : uint8_t { Copy = 0, Remove = 1, Insert = 2, Replace = 3 };

/// One primitive. Count is in instruction words; Insert/Replace carry the
/// words themselves.
struct EditPrim {
  EditOp Op = EditOp::Copy;
  uint32_t Count = 0;
  std::vector<uint32_t> Words;
};

/// An edit script transforming one word sequence into another.
struct EditScript {
  std::vector<EditPrim> Prims;

  /// Encoded size in bytes: copy/remove cost 1 byte per <=63 words;
  /// insert/replace cost 1 byte + 4 bytes per word (split every 63).
  size_t encodedBytes() const;

  /// Number of primitives after length splitting (packet-count estimates).
  size_t primitiveCount() const;

  std::vector<uint8_t> encode() const;
  static bool decode(const std::vector<uint8_t> &Bytes, EditScript &Out);
};

/// Longest-common-subsequence alignment of \p Old and \p New. Returns
/// matched index pairs (OldIdx, NewIdx), strictly increasing in both.
std::vector<std::pair<int, int>>
alignWords(const std::vector<uint32_t> &Old, const std::vector<uint32_t> &New);

/// Builds a minimal-primitive edit script from an LCS alignment.
EditScript makeEditScript(const std::vector<uint32_t> &Old,
                          const std::vector<uint32_t> &New);

/// Builds a script from an explicit alignment: \p Matches are (OldIdx,
/// NewIdx) pairs, strictly increasing in both, with Old[OldIdx] ==
/// New[NewIdx]. makeEditScript is this with the LCS alignment; the chain
/// composer passes the (generally sparser) alignment that survives a whole
/// version chain.
EditScript scriptFromMatches(const std::vector<uint32_t> &Old,
                             const std::vector<uint32_t> &New,
                             const std::vector<std::pair<int, int>> &Matches);

/// Composes two scripts into one: \p Out transforms \p Base directly into
/// the sequence that applying \p First to \p Base and then \p Second to
/// that result yields. A word is copied by \p Out only if *both* steps
/// copied it (reuse provenance intersects along the chain), so the
/// composed script models stepwise chain delivery and is never smaller
/// than a fresh endpoint diff — comparing the two is exactly the planner's
/// direct-vs-chained decision. Returns false when either script does not
/// apply.
bool composeEditScripts(const std::vector<uint32_t> &Base,
                        const EditScript &First, const EditScript &Second,
                        EditScript &Out);

/// The sensor-side patcher (paper Fig. 2): interprets \p Script against
/// \p Old. Returns false on a malformed script (wrong lengths).
bool applyEditScript(const std::vector<uint32_t> &Old,
                     const EditScript &Script, std::vector<uint32_t> &Out);

} // namespace ucc

#endif // UCC_DIFF_EDITSCRIPT_H
