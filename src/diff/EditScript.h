//===- diff/EditScript.h - edit scripts over instruction words ------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary diffing and edit scripts, operating on 4-byte SAVR instruction
/// words. The script language is the paper's (section 2.2): four primitives
/// — copy / remove (one byte each, carrying a length) and insert / replace
/// (a one-byte opcode followed by the raw instruction words). The encoded
/// script is what gets transmitted over the WSN; its byte size drives the
/// transmission-energy term of every experiment.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_DIFF_EDITSCRIPT_H
#define UCC_DIFF_EDITSCRIPT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ucc {

/// The four update primitives of section 2.2.
enum class EditOp : uint8_t { Copy = 0, Remove = 1, Insert = 2, Replace = 3 };

/// One primitive. Count is in instruction words; Insert/Replace carry the
/// words themselves.
struct EditPrim {
  EditOp Op = EditOp::Copy;
  uint32_t Count = 0;
  std::vector<uint32_t> Words;
};

/// An edit script transforming one word sequence into another.
struct EditScript {
  std::vector<EditPrim> Prims;

  /// Encoded size in bytes: copy/remove cost 1 byte per <=63 words;
  /// insert/replace cost 1 byte + 4 bytes per word (split every 63).
  size_t encodedBytes() const;

  /// Number of primitives after length splitting (packet-count estimates).
  size_t primitiveCount() const;

  std::vector<uint8_t> encode() const;
  static bool decode(const std::vector<uint8_t> &Bytes, EditScript &Out);
};

//===----------------------------------------------------------------------===//
// Word alignment
//===----------------------------------------------------------------------===//
//
// Two backends produce the (OldIdx, NewIdx) match pairs an edit script is
// built from:
//
//  - `alignWordsExact`: the full-table LCS of the original implementation.
//    Exact (maximal match count, fixed tie-breaking) but O(M*N) time and
//    memory, so it refuses inputs whose table would exceed
//    `ExactAlignCellCap` cells instead of silently mis-allocating.
//  - the anchor-accelerated engine behind `alignWords`: common prefix /
//    suffix trimming, a patience pass over words unique to both sides
//    (splitting the problem at the anchors), Myers O(ND) greedy diff with
//    linear-space divide-and-conquer for the gaps, and a hash-indexed
//    block-copy fallback once a gap's edit distance exceeds the D budget.
//    Near-linear time and O(M+N) memory on every input.
//
// `alignWords` dispatches: inputs where both sides fit
// `DiffOptions::ExactThreshold` take the exact backend (workload functions
// are a few thousand words, so every existing workload keeps byte-identical
// edit scripts); larger inputs take the engine. `DiffOptions::ForceEngine`
// pins the engine for tests and benches.

/// Policy and tuning knobs for `alignWords`. The defaults are what every
/// production call site uses; tests and benches override to pin a backend
/// or force the fallback.
struct DiffOptions {
  /// Use the exact LCS backend when both inputs have at most this many
  /// words. Must stay small enough that the quadratic table is affordable
  /// ((ExactThreshold+1)^2 cells; 4096 -> a transient 64 MiB table worst
  /// case, and far less on real function pairs).
  size_t ExactThreshold = 4096;
  /// Myers D budget per gap between anchors. A gap whose edit distance
  /// exceeds this switches to the block-copy fallback instead of paying
  /// O((M+N)*D).
  int MyersDCap = 1024;
  /// Minimum run length the block-copy fallback emits as a match. Shorter
  /// accidental matches are cheaper to retransmit than to track.
  uint32_t MinFallbackRun = 4;
  /// Occurrence cap per word in the fallback's hash index; words more
  /// common than this stop indexing new positions (they anchor nothing).
  uint32_t MaxIndexBucket = 64;
  /// Recursion depth cap for the patience anchor pass.
  int MaxAnchorDepth = 12;
  /// Ranges with both sides at most this size skip the anchor pass and go
  /// straight to Myers (cheaper than building occurrence maps).
  size_t SmallGap = 256;
  /// Always run the engine, even under ExactThreshold (testing).
  bool ForceEngine = false;
  /// Cross-validate the engine result against the exact oracle whenever
  /// the oracle is feasible; counts `diff.oracle_checks`.
  bool OracleCheck = false;
};

/// Introspection counters one `alignWords` call fills in (also mirrored
/// into the `diff.*` telemetry counters).
struct DiffStats {
  int64_t Anchors = 0;        ///< patience anchors the engine split on
  int64_t MyersD = 0;         ///< summed Myers D over all gap solves
  int64_t FallbackBlocks = 0; ///< block-copy runs emitted by the fallback
  int64_t OracleChecks = 0;   ///< cross-validations against the exact LCS
  bool UsedExact = false;     ///< dispatched to the exact backend
};

/// Cell cap for the exact LCS backend: `alignWordsExact` refuses inputs
/// with (M+1)*(N+1) > ExactAlignCellCap (a 1 GiB uint32_t table) instead
/// of mis-allocating — both sides of a square problem must stay under
/// ~16384 words. The engine has no such limit.
constexpr size_t ExactAlignCellCap = size_t(1) << 28;

/// Exact LCS alignment of \p Old and \p New (the original full-table
/// implementation): maximal match count, deterministic tie-breaking.
/// Returns matched index pairs (OldIdx, NewIdx), strictly increasing in
/// both, or std::nullopt when the table would exceed ExactAlignCellCap.
std::optional<std::vector<std::pair<int, int>>>
alignWordsExact(const std::vector<uint32_t> &Old,
                const std::vector<uint32_t> &New);

/// Word alignment of \p Old and \p New. Returns matched index pairs
/// (OldIdx, NewIdx), strictly increasing in both. Exact LCS below
/// DiffOptions::ExactThreshold, the anchor-accelerated engine above it
/// (see the section comment). Deterministic for any input and thread-safe.
std::vector<std::pair<int, int>>
alignWords(const std::vector<uint32_t> &Old, const std::vector<uint32_t> &New,
           const DiffOptions &Opts, DiffStats *Stats = nullptr);

/// `alignWords` with default options.
std::vector<std::pair<int, int>>
alignWords(const std::vector<uint32_t> &Old, const std::vector<uint32_t> &New);

/// Builds a minimal-primitive edit script from a word alignment.
EditScript makeEditScript(const std::vector<uint32_t> &Old,
                          const std::vector<uint32_t> &New);

/// `makeEditScript` with explicit alignment options (tests, benches).
EditScript makeEditScript(const std::vector<uint32_t> &Old,
                          const std::vector<uint32_t> &New,
                          const DiffOptions &Opts);

/// Builds a script from an explicit alignment: \p Matches are (OldIdx,
/// NewIdx) pairs, strictly increasing in both, with Old[OldIdx] ==
/// New[NewIdx]. makeEditScript is this with the LCS alignment; the chain
/// composer passes the (generally sparser) alignment that survives a whole
/// version chain.
EditScript scriptFromMatches(const std::vector<uint32_t> &Old,
                             const std::vector<uint32_t> &New,
                             const std::vector<std::pair<int, int>> &Matches);

/// Composes two scripts into one: \p Out transforms \p Base directly into
/// the sequence that applying \p First to \p Base and then \p Second to
/// that result yields. A word is copied by \p Out only if *both* steps
/// copied it (reuse provenance intersects along the chain), so the
/// composed script models stepwise chain delivery and is never smaller
/// than a fresh endpoint diff — comparing the two is exactly the planner's
/// direct-vs-chained decision. Returns false when either script does not
/// apply.
bool composeEditScripts(const std::vector<uint32_t> &Base,
                        const EditScript &First, const EditScript &Second,
                        EditScript &Out);

/// The sensor-side patcher (paper Fig. 2): interprets \p Script against
/// \p Old. Returns false on a malformed script (wrong lengths).
bool applyEditScript(const std::vector<uint32_t> &Old,
                     const EditScript &Script, std::vector<uint32_t> &Out);

} // namespace ucc

#endif // UCC_DIFF_EDITSCRIPT_H
