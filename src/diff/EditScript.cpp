//===- diff/EditScript.cpp - edit scripts over instruction words ----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Word alignment (the anchor-accelerated engine plus the exact-LCS
/// oracle), script construction (with adjacent-primitive merging and
/// remove+insert -> replace folding), the wire codec, and the sensor-side
/// interpreter. Every script built by makeEditScript reports its
/// per-opcode byte breakdown to the telemetry registry (`diff.*`) — the
/// quantity every experiment's transmission-energy term is built from.
///
/// The engine (EditScript.h has the dispatch policy) is the delta pipeline
/// of docs/PERFORMANCE.md: trim the common prefix/suffix, split at
/// patience anchors (words unique to both sides, chained by longest
/// increasing subsequence), solve the gaps with Myers' O(ND) greedy diff
/// in linear space (divide-and-conquer on the middle snake), and fall back
/// to a hash-indexed greedy block matcher once a gap's edit distance blows
/// the D budget. Worst-case cost is near-linear in M+N instead of the
/// oracle's quadratic table.
///
//===----------------------------------------------------------------------===//

#include "diff/EditScript.h"

#include "support/ByteStream.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace ucc;

namespace {

/// Maximum word count representable in one primitive byte (6 bits).
constexpr uint32_t MaxChunk = 63;

/// Number of <=63-word chunks needed for \p Count words.
size_t chunksFor(uint32_t Count) { return (Count + MaxChunk - 1) / MaxChunk; }

} // namespace

size_t EditScript::encodedBytes() const {
  size_t Bytes = 0;
  for (const EditPrim &P : Prims) {
    if (P.Count == 0)
      continue;
    switch (P.Op) {
    case EditOp::Copy:
    case EditOp::Remove:
      Bytes += chunksFor(P.Count);
      break;
    case EditOp::Insert:
    case EditOp::Replace:
      Bytes += chunksFor(P.Count) + static_cast<size_t>(P.Count) * 4;
      break;
    }
  }
  return Bytes;
}

size_t EditScript::primitiveCount() const {
  size_t N = 0;
  for (const EditPrim &P : Prims)
    if (P.Count != 0)
      N += chunksFor(P.Count);
  return N;
}

std::vector<uint8_t> EditScript::encode() const {
  ByteWriter W;
  for (const EditPrim &P : Prims) {
    uint32_t Remaining = P.Count;
    uint32_t WordPos = 0;
    while (Remaining > 0) {
      uint32_t Chunk = std::min(Remaining, MaxChunk);
      W.writeU8(static_cast<uint8_t>((static_cast<uint8_t>(P.Op) << 6) |
                                     Chunk));
      if (P.Op == EditOp::Insert || P.Op == EditOp::Replace) {
        for (uint32_t K = 0; K < Chunk; ++K)
          W.writeU32(P.Words[WordPos + K]);
        WordPos += Chunk;
      }
      Remaining -= Chunk;
    }
  }
  return W.take();
}

bool EditScript::decode(const std::vector<uint8_t> &Bytes, EditScript &Out) {
  Out.Prims.clear();
  ByteReader R(Bytes);
  while (!R.atEnd() && !R.hadError()) {
    uint8_t Head = R.readU8();
    EditPrim P;
    P.Op = static_cast<EditOp>(Head >> 6);
    P.Count = Head & 0x3f;
    if (P.Count == 0)
      return false; // zero-length primitives are never produced
    if (P.Op == EditOp::Insert || P.Op == EditOp::Replace) {
      P.Words.reserve(P.Count);
      for (uint32_t K = 0; K < P.Count; ++K)
        P.Words.push_back(R.readU32());
    }
    Out.Prims.push_back(std::move(P));
  }
  return !R.hadError();
}

std::optional<std::vector<std::pair<int, int>>>
ucc::alignWordsExact(const std::vector<uint32_t> &Old,
                     const std::vector<uint32_t> &New) {
  size_t M = Old.size(), N = New.size();
  // Refuse instead of mis-allocating: the (M+1)*(N+1) table must fit
  // ExactAlignCellCap cells (the product is computed divide-side so the
  // check itself cannot overflow size_t).
  if (M + 1 > ExactAlignCellCap / (N + 1))
    return std::nullopt;

  // Classic O(M*N) LCS table: exact (the paper compares against the *best
  // possible* binary match, section 5.3) and the byte-stability reference
  // for every script the engine's exact dispatch produces.
  std::vector<uint32_t> Table((M + 1) * (N + 1), 0);
  auto At = [&](size_t I, size_t J) -> uint32_t & {
    return Table[I * (N + 1) + J];
  };
  for (size_t I = M; I-- > 0;) {
    for (size_t J = N; J-- > 0;) {
      if (Old[I] == New[J])
        At(I, J) = At(I + 1, J + 1) + 1;
      else
        At(I, J) = std::max(At(I + 1, J), At(I, J + 1));
    }
  }

  std::vector<std::pair<int, int>> Matches;
  size_t I = 0, J = 0;
  while (I < M && J < N) {
    if (Old[I] == New[J]) {
      Matches.push_back({static_cast<int>(I), static_cast<int>(J)});
      ++I;
      ++J;
    } else if (At(I + 1, J) >= At(I, J + 1)) {
      ++I;
    } else {
      ++J;
    }
  }
  return Matches;
}

namespace {

/// The anchor-accelerated alignment engine. One instance per alignWords
/// call; all state is local, so concurrent calls never share anything.
class DiffEngine {
public:
  DiffEngine(const std::vector<uint32_t> &Old,
             const std::vector<uint32_t> &New, const DiffOptions &Opts,
             DiffStats &Stats)
      : Old(Old), New(New), Opts(Opts), Stats(Stats) {}

  std::vector<std::pair<int, int>> run() {
    Matches.reserve(std::min(Old.size(), New.size()));
    align(0, static_cast<int>(Old.size()), 0,
          static_cast<int>(New.size()), 0);
    return std::move(Matches);
  }

private:
  /// Middle snake of one Myers divide step, in absolute word indices.
  struct Snake {
    int X = 0, Y = 0, U = 0, V = 0;
  };

  void emit(int I, int J) { Matches.push_back({I, J}); }

  /// Aligns Old[OL,OH) against New[NL,NH): trim, then anchors, then Myers.
  void align(int OL, int OH, int NL, int NH, int Depth) {
    while (OL < OH && NL < NH && Old[OL] == New[NL]) {
      emit(OL, NL);
      ++OL;
      ++NL;
    }
    int Suffix = 0;
    while (OL < OH && NL < NH && Old[OH - 1] == New[NH - 1]) {
      --OH;
      --NH;
      ++Suffix;
    }
    if (OL < OH && NL < NH) {
      bool Small = static_cast<size_t>(OH - OL) <= Opts.SmallGap &&
                   static_cast<size_t>(NH - NL) <= Opts.SmallGap;
      if (Small || Depth >= Opts.MaxAnchorDepth ||
          !anchorSplit(OL, OH, NL, NH, Depth))
        myers(OL, OH, NL, NH);
    }
    for (int K = 0; K < Suffix; ++K)
      emit(OH + K, NH + K);
  }

  /// Patience pass: words unique to both ranges become candidate anchors;
  /// the longest chain increasing in both coordinates splits the problem.
  /// Returns false when the range has no usable anchors.
  bool anchorSplit(int OL, int OH, int NL, int NH, int Depth) {
    // Occurrence count and (last) position per word, both sides.
    std::unordered_map<uint32_t, std::pair<int, int>> OldOcc, NewOcc;
    OldOcc.reserve(static_cast<size_t>(OH - OL));
    NewOcc.reserve(static_cast<size_t>(NH - NL));
    for (int I = OL; I < OH; ++I) {
      auto &E = OldOcc.try_emplace(Old[I], 0, I).first->second;
      ++E.first;
      E.second = I;
    }
    for (int J = NL; J < NH; ++J) {
      auto &E = NewOcc.try_emplace(New[J], 0, J).first->second;
      ++E.first;
      E.second = J;
    }

    // Candidates in old order; their new positions then need a longest
    // strictly-increasing subsequence (patience chaining, O(k log k)).
    std::vector<int> CandNew;
    std::vector<int> CandOld;
    for (int I = OL; I < OH; ++I) {
      auto OIt = OldOcc.find(Old[I]);
      if (OIt->second.first != 1)
        continue;
      auto NIt = NewOcc.find(Old[I]);
      if (NIt == NewOcc.end() || NIt->second.first != 1)
        continue;
      CandOld.push_back(I);
      CandNew.push_back(NIt->second.second);
    }
    if (CandNew.empty())
      return false;

    std::vector<int> Tails;     // candidate index ending each pile
    std::vector<int> Prev(CandNew.size(), -1);
    for (size_t K = 0; K < CandNew.size(); ++K) {
      auto Pos = std::lower_bound(
          Tails.begin(), Tails.end(), CandNew[K],
          [&](int TailIdx, int Val) { return CandNew[static_cast<size_t>(
                                                 TailIdx)] < Val; });
      if (Pos != Tails.begin())
        Prev[K] = *(Pos - 1);
      if (Pos == Tails.end())
        Tails.push_back(static_cast<int>(K));
      else
        *Pos = static_cast<int>(K);
    }
    std::vector<std::pair<int, int>> Chain;
    for (int At = Tails.back(); At >= 0; At = Prev[static_cast<size_t>(At)])
      Chain.push_back({CandOld[static_cast<size_t>(At)],
                       CandNew[static_cast<size_t>(At)]});
    std::reverse(Chain.begin(), Chain.end());

    Stats.Anchors += static_cast<int64_t>(Chain.size());
    int PO = OL, PN = NL;
    for (const auto &[AO, AN] : Chain) {
      align(PO, AO, PN, AN, Depth + 1);
      emit(AO, AN);
      PO = AO + 1;
      PN = AN + 1;
    }
    align(PO, OH, PN, NH, Depth + 1);
    return true;
  }

  /// Myers linear-space divide-and-conquer over a (trimmed, non-empty)
  /// range. Exact while the D budget holds; a range whose middle snake
  /// exceeds it drops to the block-copy fallback.
  void myers(int OL, int OH, int NL, int NH) {
    Snake S;
    int D = middleSnake(OL, OH, NL, NH, S);
    if (D < 0) {
      fallback(OL, OH, NL, NH);
      return;
    }
    Stats.MyersD += D;
    if (D <= 1) {
      // At most one insertion or deletion: the shorter side matches
      // word-for-word around it.
      int I = OL, J = NL;
      while (I < OH && J < NH) {
        if (Old[I] == New[J]) {
          emit(I, J);
          ++I;
          ++J;
        } else if (OH - I > NH - J) {
          ++I;
        } else {
          ++J;
        }
      }
      return;
    }
    myersSub(OL, S.X, NL, S.Y);
    for (int K = 0; K < S.U - S.X; ++K)
      emit(S.X + K, S.Y + K);
    myersSub(S.U, OH, S.V, NH);
  }

  /// Trims a divide half, then recurses into myers() when both sides
  /// survive (the extra trimming keeps the recursion shallow).
  void myersSub(int OL, int OH, int NL, int NH) {
    while (OL < OH && NL < NH && Old[OL] == New[NL]) {
      emit(OL, NL);
      ++OL;
      ++NL;
    }
    int Suffix = 0;
    while (OL < OH && NL < NH && Old[OH - 1] == New[NH - 1]) {
      --OH;
      --NH;
      ++Suffix;
    }
    if (OL < OH && NL < NH)
      myers(OL, OH, NL, NH);
    for (int K = 0; K < Suffix; ++K)
      emit(OH + K, NH + K);
  }

  /// Finds the middle snake of Old[OL,OH) vs New[NL,NH) (Myers 1986,
  /// "An O(ND) Difference Algorithm", section 4b). Returns the range's
  /// exact edit distance with \p S filled in, or -1 once the search would
  /// exceed DiffOptions::MyersDCap.
  int middleSnake(int OL, int OH, int NL, int NH, Snake &S) {
    const int N = OH - OL, M = NH - NL;
    const int Delta = N - M;
    const bool Odd = (Delta & 1) != 0;
    const int MaxD = (N + M + 1) / 2;
    const int Budget = std::min(MaxD, Opts.MyersDCap);

    // Diagonal index k lives in [-Budget-1, Budget+1] for both sweeps.
    const int Off = Budget + 2;
    VF.assign(static_cast<size_t>(2 * Off + 1), 0);
    VB.assign(static_cast<size_t>(2 * Off + 1), 0);

    for (int D = 0; D <= Budget + 1; ++D) {
      if (D > Budget)
        return -1; // edit distance exceeds the budget
      // Forward sweep from (OL, NL).
      for (int K = -D; K <= D; K += 2) {
        int X = (K == -D ||
                 (K != D && VF[static_cast<size_t>(Off + K - 1)] <
                                VF[static_cast<size_t>(Off + K + 1)]))
                    ? VF[static_cast<size_t>(Off + K + 1)]
                    : VF[static_cast<size_t>(Off + K - 1)] + 1;
        int Y = X - K;
        int X0 = X, Y0 = Y;
        while (X < N && Y < M && Old[OL + X] == New[NL + Y]) {
          ++X;
          ++Y;
        }
        VF[static_cast<size_t>(Off + K)] = X;
        if (Odd && K - Delta >= -(D - 1) && K - Delta <= D - 1) {
          // Reverse path of phase D-1 on the same diagonal: its furthest
          // reach, translated to forward coordinates, is N - VB[...].
          int RX = VB[static_cast<size_t>(Off + (Delta - K))];
          if (X + RX >= N) {
            S = {OL + X0, NL + Y0, OL + X, NL + Y};
            return 2 * D - 1;
          }
        }
      }
      // Reverse sweep from (OH, NH): the same algorithm on the reversed
      // words; KR indexes reversed-coordinate diagonals.
      for (int KR = -D; KR <= D; KR += 2) {
        int X = (KR == -D ||
                 (KR != D && VB[static_cast<size_t>(Off + KR - 1)] <
                                 VB[static_cast<size_t>(Off + KR + 1)]))
                    ? VB[static_cast<size_t>(Off + KR + 1)]
                    : VB[static_cast<size_t>(Off + KR - 1)] + 1;
        int Y = X - KR;
        int X0 = X, Y0 = Y;
        while (X < N && Y < M && Old[OH - 1 - X] == New[NH - 1 - Y]) {
          ++X;
          ++Y;
        }
        VB[static_cast<size_t>(Off + KR)] = X;
        if (!Odd && Delta - KR >= -D && Delta - KR <= D) {
          int FX = VF[static_cast<size_t>(Off + (Delta - KR))];
          if (X + FX >= N) {
            // The reverse snake, in forward coordinates, runs from
            // (N-X, M-Y) up to (N-X0, M-Y0).
            S = {OL + N - X, NL + M - Y, OL + N - X0, NL + M - Y0};
            return 2 * D;
          }
        }
      }
    }
    return -1; // unreachable: D == MaxD always finds the snake
  }

  /// rsync/bsdiff-style fallback for ranges whose edit distance exceeds
  /// the Myers budget: hash-index the old range's words, then greedily
  /// emit in-order block copies of at least MinFallbackRun words.
  void fallback(int OL, int OH, int NL, int NH) {
    std::unordered_map<uint32_t, std::vector<int>> Index;
    Index.reserve(static_cast<size_t>(OH - OL));
    for (int I = OL; I < OH; ++I) {
      std::vector<int> &Bucket = Index[Old[I]];
      if (Bucket.size() < Opts.MaxIndexBucket)
        Bucket.push_back(I); // positions stay sorted by construction
    }
    int MinOld = OL;
    int J = NL;
    while (J < NH && MinOld < OH) {
      auto It = Index.find(New[J]);
      if (It == Index.end()) {
        ++J;
        continue;
      }
      auto Pos = std::lower_bound(It->second.begin(), It->second.end(),
                                  MinOld);
      if (Pos == It->second.end()) {
        ++J;
        continue;
      }
      int I = *Pos;
      int Run = 0;
      while (I + Run < OH && J + Run < NH && Old[I + Run] == New[J + Run])
        ++Run;
      if (Run < static_cast<int>(Opts.MinFallbackRun)) {
        ++J;
        continue;
      }
      for (int K = 0; K < Run; ++K)
        emit(I + K, J + K);
      ++Stats.FallbackBlocks;
      MinOld = I + Run;
      J += Run;
    }
  }

  const std::vector<uint32_t> &Old;
  const std::vector<uint32_t> &New;
  const DiffOptions &Opts;
  DiffStats &Stats;
  std::vector<std::pair<int, int>> Matches;
  std::vector<int> VF, VB; ///< Myers furthest-reach buffers, reused
};

} // namespace

std::vector<std::pair<int, int>>
ucc::alignWords(const std::vector<uint32_t> &Old,
                const std::vector<uint32_t> &New, const DiffOptions &Opts,
                DiffStats *Stats) {
  DiffStats Local;
  DiffStats &S = Stats ? *Stats : Local;

  std::vector<std::pair<int, int>> Matches;
  if (!Opts.ForceEngine && Old.size() <= Opts.ExactThreshold &&
      New.size() <= Opts.ExactThreshold) {
    // Always feasible at the default threshold (4096^2 cells is far below
    // ExactAlignCellCap); a caller-raised threshold can make the oracle
    // refuse, in which case the engine below picks the input up.
    if (auto Exact = alignWordsExact(Old, New)) {
      S.UsedExact = true;
      Matches = std::move(*Exact);
    }
  }
  if (!S.UsedExact) {
    DiffEngine Engine(Old, New, Opts, S);
    Matches = Engine.run();
    if (Opts.OracleCheck) {
      if (auto Exact = alignWordsExact(Old, New)) {
        ++S.OracleChecks;
        // The engine's matches are a common subsequence, so it can never
        // beat the LCS; near-parity is asserted by the DiffTest fuzz suite
        // via the documented script-size bound.
        assert(Matches.size() <= Exact->size());
        (void)Exact;
      }
    }
  }

  if (Telemetry *T = currentTelemetry()) {
    if (S.Anchors)
      T->addCounter("diff.anchors", S.Anchors);
    if (S.MyersD)
      T->addCounter("diff.myers_d", S.MyersD);
    if (S.FallbackBlocks)
      T->addCounter("diff.fallback_blocks", S.FallbackBlocks);
    if (S.OracleChecks)
      T->addCounter("diff.oracle_checks", S.OracleChecks);
  }
  return Matches;
}

std::vector<std::pair<int, int>>
ucc::alignWords(const std::vector<uint32_t> &Old,
                const std::vector<uint32_t> &New) {
  return alignWords(Old, New, DiffOptions{});
}

EditScript ucc::scriptFromMatches(
    const std::vector<uint32_t> &Old, const std::vector<uint32_t> &New,
    const std::vector<std::pair<int, int>> &Matches) {
  EditScript Script;

  auto push = [&](EditOp Op, uint32_t Count,
                  std::vector<uint32_t> Words = {}) {
    if (Count == 0)
      return;
    // Merge adjacent primitives of the same kind.
    if (!Script.Prims.empty() && Script.Prims.back().Op == Op) {
      EditPrim &Last = Script.Prims.back();
      Last.Count += Count;
      Last.Words.insert(Last.Words.end(), Words.begin(), Words.end());
      return;
    }
    Script.Prims.push_back(EditPrim{Op, Count, std::move(Words)});
  };

  size_t OldPos = 0, NewPos = 0;
  auto emitGap = [&](size_t OldEnd, size_t NewEnd) {
    size_t Removed = OldEnd - OldPos;
    size_t Inserted = NewEnd - NewPos;
    // A paired removal+insertion becomes a cheaper Replace.
    size_t Replaced = std::min(Removed, Inserted);
    if (Replaced > 0) {
      std::vector<uint32_t> Words(New.begin() + NewPos,
                                  New.begin() + NewPos + Replaced);
      push(EditOp::Replace, static_cast<uint32_t>(Replaced),
           std::move(Words));
    }
    if (Removed > Replaced)
      push(EditOp::Remove, static_cast<uint32_t>(Removed - Replaced));
    if (Inserted > Replaced) {
      std::vector<uint32_t> Words(New.begin() + NewPos + Replaced,
                                  New.begin() + NewEnd);
      push(EditOp::Insert, static_cast<uint32_t>(Inserted - Replaced),
           std::move(Words));
    }
    OldPos = OldEnd;
    NewPos = NewEnd;
  };

  for (const auto &[OldIdx, NewIdx] : Matches) {
    emitGap(static_cast<size_t>(OldIdx), static_cast<size_t>(NewIdx));
    push(EditOp::Copy, 1);
    ++OldPos;
    ++NewPos;
  }
  emitGap(Old.size(), New.size());
  return Script;
}

EditScript ucc::makeEditScript(const std::vector<uint32_t> &Old,
                               const std::vector<uint32_t> &New) {
  return makeEditScript(Old, New, DiffOptions{});
}

EditScript ucc::makeEditScript(const std::vector<uint32_t> &Old,
                               const std::vector<uint32_t> &New,
                               const DiffOptions &Opts) {
  EditScript Script = scriptFromMatches(Old, New, alignWords(Old, New, Opts));

  if (Telemetry *T = currentTelemetry()) {
    static const char *OpKey[] = {"diff.bytes.copy", "diff.bytes.remove",
                                  "diff.bytes.insert", "diff.bytes.replace"};
    T->addCounter("diff.scripts");
    T->addCounter("diff.prims",
                  static_cast<int64_t>(Script.primitiveCount()));
    T->addCounter("diff.script_bytes",
                  static_cast<int64_t>(Script.encodedBytes()));
    for (const EditPrim &P : Script.Prims) {
      if (P.Count == 0)
        continue;
      size_t Bytes = chunksFor(P.Count);
      if (P.Op == EditOp::Insert || P.Op == EditOp::Replace)
        Bytes += static_cast<size_t>(P.Count) * 4;
      T->addCounter(OpKey[static_cast<size_t>(P.Op)],
                    static_cast<int64_t>(Bytes));
    }
  }
  return Script;
}

bool ucc::composeEditScripts(const std::vector<uint32_t> &Base,
                             const EditScript &First,
                             const EditScript &Second, EditScript &Out) {
  Out = EditScript();

  // Replay First over Base, tracking per-output-word provenance: the Base
  // index a copied word came from, or -1 for inserted/replaced literals.
  std::vector<uint32_t> Mid;
  std::vector<int> MidSrc;
  {
    size_t Pos = 0;
    for (const EditPrim &P : First.Prims) {
      switch (P.Op) {
      case EditOp::Copy:
        if (Pos + P.Count > Base.size())
          return false;
        for (uint32_t K = 0; K < P.Count; ++K) {
          Mid.push_back(Base[Pos + K]);
          MidSrc.push_back(static_cast<int>(Pos + K));
        }
        Pos += P.Count;
        break;
      case EditOp::Remove:
        if (Pos + P.Count > Base.size())
          return false;
        Pos += P.Count;
        break;
      case EditOp::Insert:
      case EditOp::Replace:
        if (P.Words.size() != P.Count)
          return false;
        if (P.Op == EditOp::Replace) {
          if (Pos + P.Count > Base.size())
            return false;
          Pos += P.Count;
        }
        for (uint32_t Word : P.Words) {
          Mid.push_back(Word);
          MidSrc.push_back(-1);
        }
        break;
      }
    }
    if (Pos != Base.size())
      return false;
  }

  // Replay Second over Mid: the final words, each carrying the Base index
  // it was copied from end to end (or -1 once either step synthesized it).
  std::vector<uint32_t> Final;
  std::vector<int> FinalSrc;
  {
    size_t Pos = 0;
    for (const EditPrim &P : Second.Prims) {
      switch (P.Op) {
      case EditOp::Copy:
        if (Pos + P.Count > Mid.size())
          return false;
        for (uint32_t K = 0; K < P.Count; ++K) {
          Final.push_back(Mid[Pos + K]);
          FinalSrc.push_back(MidSrc[Pos + K]);
        }
        Pos += P.Count;
        break;
      case EditOp::Remove:
        if (Pos + P.Count > Mid.size())
          return false;
        Pos += P.Count;
        break;
      case EditOp::Insert:
      case EditOp::Replace:
        if (P.Words.size() != P.Count)
          return false;
        if (P.Op == EditOp::Replace) {
          if (Pos + P.Count > Mid.size())
            return false;
          Pos += P.Count;
        }
        for (uint32_t Word : P.Words) {
          Final.push_back(Word);
          FinalSrc.push_back(-1);
        }
        break;
      }
    }
    if (Pos != Mid.size())
      return false;
  }

  // The surviving provenance is a valid alignment: both scripts copy in
  // order, so Base indices appear strictly increasing along Final.
  std::vector<std::pair<int, int>> Matches;
  for (size_t K = 0; K < FinalSrc.size(); ++K)
    if (FinalSrc[K] >= 0)
      Matches.push_back({FinalSrc[K], static_cast<int>(K)});
  Out = scriptFromMatches(Base, Final, Matches);
  telemetryCount("diff.compositions");
  return true;
}

bool ucc::applyEditScript(const std::vector<uint32_t> &Old,
                          const EditScript &Script,
                          std::vector<uint32_t> &Out) {
  Out.clear();
  size_t OldPos = 0;
  for (const EditPrim &P : Script.Prims) {
    switch (P.Op) {
    case EditOp::Copy:
      if (OldPos + P.Count > Old.size())
        return false;
      Out.insert(Out.end(), Old.begin() + OldPos,
                 Old.begin() + OldPos + P.Count);
      OldPos += P.Count;
      break;
    case EditOp::Remove:
      if (OldPos + P.Count > Old.size())
        return false;
      OldPos += P.Count;
      break;
    case EditOp::Insert:
      if (P.Words.size() != P.Count)
        return false;
      Out.insert(Out.end(), P.Words.begin(), P.Words.end());
      break;
    case EditOp::Replace:
      if (P.Words.size() != P.Count || OldPos + P.Count > Old.size())
        return false;
      Out.insert(Out.end(), P.Words.begin(), P.Words.end());
      OldPos += P.Count;
      break;
    }
  }
  return OldPos == Old.size();
}
