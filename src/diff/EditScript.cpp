//===- diff/EditScript.cpp - edit scripts over instruction words ----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LCS word alignment, script construction (with adjacent-primitive merging
/// and remove+insert -> replace folding), the wire codec, and the
/// sensor-side interpreter. Every script built by makeEditScript reports
/// its per-opcode byte breakdown to the telemetry registry (`diff.*`) —
/// the quantity every experiment's transmission-energy term is built from.
///
//===----------------------------------------------------------------------===//

#include "diff/EditScript.h"

#include "support/ByteStream.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace ucc;

namespace {

/// Maximum word count representable in one primitive byte (6 bits).
constexpr uint32_t MaxChunk = 63;

/// Number of <=63-word chunks needed for \p Count words.
size_t chunksFor(uint32_t Count) { return (Count + MaxChunk - 1) / MaxChunk; }

} // namespace

size_t EditScript::encodedBytes() const {
  size_t Bytes = 0;
  for (const EditPrim &P : Prims) {
    if (P.Count == 0)
      continue;
    switch (P.Op) {
    case EditOp::Copy:
    case EditOp::Remove:
      Bytes += chunksFor(P.Count);
      break;
    case EditOp::Insert:
    case EditOp::Replace:
      Bytes += chunksFor(P.Count) + static_cast<size_t>(P.Count) * 4;
      break;
    }
  }
  return Bytes;
}

size_t EditScript::primitiveCount() const {
  size_t N = 0;
  for (const EditPrim &P : Prims)
    if (P.Count != 0)
      N += chunksFor(P.Count);
  return N;
}

std::vector<uint8_t> EditScript::encode() const {
  ByteWriter W;
  for (const EditPrim &P : Prims) {
    uint32_t Remaining = P.Count;
    uint32_t WordPos = 0;
    while (Remaining > 0) {
      uint32_t Chunk = std::min(Remaining, MaxChunk);
      W.writeU8(static_cast<uint8_t>((static_cast<uint8_t>(P.Op) << 6) |
                                     Chunk));
      if (P.Op == EditOp::Insert || P.Op == EditOp::Replace) {
        for (uint32_t K = 0; K < Chunk; ++K)
          W.writeU32(P.Words[WordPos + K]);
        WordPos += Chunk;
      }
      Remaining -= Chunk;
    }
  }
  return W.take();
}

bool EditScript::decode(const std::vector<uint8_t> &Bytes, EditScript &Out) {
  Out.Prims.clear();
  ByteReader R(Bytes);
  while (!R.atEnd() && !R.hadError()) {
    uint8_t Head = R.readU8();
    EditPrim P;
    P.Op = static_cast<EditOp>(Head >> 6);
    P.Count = Head & 0x3f;
    if (P.Count == 0)
      return false; // zero-length primitives are never produced
    if (P.Op == EditOp::Insert || P.Op == EditOp::Replace) {
      P.Words.reserve(P.Count);
      for (uint32_t K = 0; K < P.Count; ++K)
        P.Words.push_back(R.readU32());
    }
    Out.Prims.push_back(std::move(P));
  }
  return !R.hadError();
}

std::vector<std::pair<int, int>>
ucc::alignWords(const std::vector<uint32_t> &Old,
                const std::vector<uint32_t> &New) {
  size_t M = Old.size(), N = New.size();
  // Classic O(M*N) LCS table; workload functions are a few thousand words
  // at most, so the quadratic table is cheap and exact (the paper compares
  // against the *best possible* binary match, section 5.3).
  std::vector<uint32_t> Table((M + 1) * (N + 1), 0);
  auto At = [&](size_t I, size_t J) -> uint32_t & {
    return Table[I * (N + 1) + J];
  };
  for (size_t I = M; I-- > 0;) {
    for (size_t J = N; J-- > 0;) {
      if (Old[I] == New[J])
        At(I, J) = At(I + 1, J + 1) + 1;
      else
        At(I, J) = std::max(At(I + 1, J), At(I, J + 1));
    }
  }

  std::vector<std::pair<int, int>> Matches;
  size_t I = 0, J = 0;
  while (I < M && J < N) {
    if (Old[I] == New[J]) {
      Matches.push_back({static_cast<int>(I), static_cast<int>(J)});
      ++I;
      ++J;
    } else if (At(I + 1, J) >= At(I, J + 1)) {
      ++I;
    } else {
      ++J;
    }
  }
  return Matches;
}

EditScript ucc::scriptFromMatches(
    const std::vector<uint32_t> &Old, const std::vector<uint32_t> &New,
    const std::vector<std::pair<int, int>> &Matches) {
  EditScript Script;

  auto push = [&](EditOp Op, uint32_t Count,
                  std::vector<uint32_t> Words = {}) {
    if (Count == 0)
      return;
    // Merge adjacent primitives of the same kind.
    if (!Script.Prims.empty() && Script.Prims.back().Op == Op) {
      EditPrim &Last = Script.Prims.back();
      Last.Count += Count;
      Last.Words.insert(Last.Words.end(), Words.begin(), Words.end());
      return;
    }
    Script.Prims.push_back(EditPrim{Op, Count, std::move(Words)});
  };

  size_t OldPos = 0, NewPos = 0;
  auto emitGap = [&](size_t OldEnd, size_t NewEnd) {
    size_t Removed = OldEnd - OldPos;
    size_t Inserted = NewEnd - NewPos;
    // A paired removal+insertion becomes a cheaper Replace.
    size_t Replaced = std::min(Removed, Inserted);
    if (Replaced > 0) {
      std::vector<uint32_t> Words(New.begin() + NewPos,
                                  New.begin() + NewPos + Replaced);
      push(EditOp::Replace, static_cast<uint32_t>(Replaced),
           std::move(Words));
    }
    if (Removed > Replaced)
      push(EditOp::Remove, static_cast<uint32_t>(Removed - Replaced));
    if (Inserted > Replaced) {
      std::vector<uint32_t> Words(New.begin() + NewPos + Replaced,
                                  New.begin() + NewEnd);
      push(EditOp::Insert, static_cast<uint32_t>(Inserted - Replaced),
           std::move(Words));
    }
    OldPos = OldEnd;
    NewPos = NewEnd;
  };

  for (const auto &[OldIdx, NewIdx] : Matches) {
    emitGap(static_cast<size_t>(OldIdx), static_cast<size_t>(NewIdx));
    push(EditOp::Copy, 1);
    ++OldPos;
    ++NewPos;
  }
  emitGap(Old.size(), New.size());
  return Script;
}

EditScript ucc::makeEditScript(const std::vector<uint32_t> &Old,
                               const std::vector<uint32_t> &New) {
  EditScript Script = scriptFromMatches(Old, New, alignWords(Old, New));

  if (Telemetry *T = currentTelemetry()) {
    static const char *OpKey[] = {"diff.bytes.copy", "diff.bytes.remove",
                                  "diff.bytes.insert", "diff.bytes.replace"};
    T->addCounter("diff.scripts");
    T->addCounter("diff.prims",
                  static_cast<int64_t>(Script.primitiveCount()));
    T->addCounter("diff.script_bytes",
                  static_cast<int64_t>(Script.encodedBytes()));
    for (const EditPrim &P : Script.Prims) {
      if (P.Count == 0)
        continue;
      size_t Bytes = chunksFor(P.Count);
      if (P.Op == EditOp::Insert || P.Op == EditOp::Replace)
        Bytes += static_cast<size_t>(P.Count) * 4;
      T->addCounter(OpKey[static_cast<size_t>(P.Op)],
                    static_cast<int64_t>(Bytes));
    }
  }
  return Script;
}

bool ucc::composeEditScripts(const std::vector<uint32_t> &Base,
                             const EditScript &First,
                             const EditScript &Second, EditScript &Out) {
  Out = EditScript();

  // Replay First over Base, tracking per-output-word provenance: the Base
  // index a copied word came from, or -1 for inserted/replaced literals.
  std::vector<uint32_t> Mid;
  std::vector<int> MidSrc;
  {
    size_t Pos = 0;
    for (const EditPrim &P : First.Prims) {
      switch (P.Op) {
      case EditOp::Copy:
        if (Pos + P.Count > Base.size())
          return false;
        for (uint32_t K = 0; K < P.Count; ++K) {
          Mid.push_back(Base[Pos + K]);
          MidSrc.push_back(static_cast<int>(Pos + K));
        }
        Pos += P.Count;
        break;
      case EditOp::Remove:
        if (Pos + P.Count > Base.size())
          return false;
        Pos += P.Count;
        break;
      case EditOp::Insert:
      case EditOp::Replace:
        if (P.Words.size() != P.Count)
          return false;
        if (P.Op == EditOp::Replace) {
          if (Pos + P.Count > Base.size())
            return false;
          Pos += P.Count;
        }
        for (uint32_t Word : P.Words) {
          Mid.push_back(Word);
          MidSrc.push_back(-1);
        }
        break;
      }
    }
    if (Pos != Base.size())
      return false;
  }

  // Replay Second over Mid: the final words, each carrying the Base index
  // it was copied from end to end (or -1 once either step synthesized it).
  std::vector<uint32_t> Final;
  std::vector<int> FinalSrc;
  {
    size_t Pos = 0;
    for (const EditPrim &P : Second.Prims) {
      switch (P.Op) {
      case EditOp::Copy:
        if (Pos + P.Count > Mid.size())
          return false;
        for (uint32_t K = 0; K < P.Count; ++K) {
          Final.push_back(Mid[Pos + K]);
          FinalSrc.push_back(MidSrc[Pos + K]);
        }
        Pos += P.Count;
        break;
      case EditOp::Remove:
        if (Pos + P.Count > Mid.size())
          return false;
        Pos += P.Count;
        break;
      case EditOp::Insert:
      case EditOp::Replace:
        if (P.Words.size() != P.Count)
          return false;
        if (P.Op == EditOp::Replace) {
          if (Pos + P.Count > Mid.size())
            return false;
          Pos += P.Count;
        }
        for (uint32_t Word : P.Words) {
          Final.push_back(Word);
          FinalSrc.push_back(-1);
        }
        break;
      }
    }
    if (Pos != Mid.size())
      return false;
  }

  // The surviving provenance is a valid alignment: both scripts copy in
  // order, so Base indices appear strictly increasing along Final.
  std::vector<std::pair<int, int>> Matches;
  for (size_t K = 0; K < FinalSrc.size(); ++K)
    if (FinalSrc[K] >= 0)
      Matches.push_back({FinalSrc[K], static_cast<int>(K)});
  Out = scriptFromMatches(Base, Final, Matches);
  telemetryCount("diff.compositions");
  return true;
}

bool ucc::applyEditScript(const std::vector<uint32_t> &Old,
                          const EditScript &Script,
                          std::vector<uint32_t> &Out) {
  Out.clear();
  size_t OldPos = 0;
  for (const EditPrim &P : Script.Prims) {
    switch (P.Op) {
    case EditOp::Copy:
      if (OldPos + P.Count > Old.size())
        return false;
      Out.insert(Out.end(), Old.begin() + OldPos,
                 Old.begin() + OldPos + P.Count);
      OldPos += P.Count;
      break;
    case EditOp::Remove:
      if (OldPos + P.Count > Old.size())
        return false;
      OldPos += P.Count;
      break;
    case EditOp::Insert:
      if (P.Words.size() != P.Count)
        return false;
      Out.insert(Out.end(), P.Words.begin(), P.Words.end());
      break;
    case EditOp::Replace:
      if (P.Words.size() != P.Count || OldPos + P.Count > Old.size())
        return false;
      Out.insert(Out.end(), P.Words.begin(), P.Words.end());
      OldPos += P.Count;
      break;
    }
  }
  return OldPos == Old.size();
}
