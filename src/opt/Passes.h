//===- opt/Passes.h - IR optimization passes -------------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR optimizer. Per the paper's Fig. 1, update-conscious compilation
/// happens *after* optimization, during code generation; these passes make
/// the "optimized IR" stage honest so that preserving performance
/// improvements while matching old code-generation decisions is actually
/// exercised by the pipeline.
///
/// Every pass returns true when it changed something; optimizeModule()
/// iterates the pipeline to a fixpoint (bounded).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_OPT_PASSES_H
#define UCC_OPT_PASSES_H

#include "ir/IR.h"

namespace ucc {

/// Optimization effort. O0 = none, O1 = full pipeline (default).
enum class OptLevel { O0, O1 };

/// Folds constant expressions and branches on constant conditions.
/// Block-local value tracking (the IR is not SSA).
bool foldConstants(Function &F);

/// Replaces uses of `x` after `x = mov y` with `y` while neither is
/// redefined (block-local).
bool propagateCopies(Function &F);

/// Block-local common-subexpression elimination over pure instructions
/// (Const / Bin / Un).
bool eliminateCommonSubexprs(Function &F);

/// Removes side-effect-free instructions whose results are never used.
bool eliminateDeadCode(Function &F);

/// Threads branches through trivial forwarding blocks and deletes
/// unreachable blocks (remapping block indices).
bool simplifyCFG(Function &F);

/// Runs the full pipeline over every function until a (bounded) fixpoint.
/// Returns true if anything changed.
bool optimizeModule(Module &M, OptLevel Level = OptLevel::O1);

} // namespace ucc

#endif // UCC_OPT_PASSES_H
