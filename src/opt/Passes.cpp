//===- opt/Passes.cpp ---------------------------------------------------------==//

#include "opt/Passes.h"

#include "analysis/Dataflow.h"
#include "analysis/IRAnalysis.h"

#include <map>
#include <optional>
#include <unordered_map>

using namespace ucc;

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

bool ucc::foldConstants(Function &F) {
  bool Changed = false;
  for (BasicBlock &BB : F.Blocks) {
    // vreg -> known constant value at the current program point.
    std::unordered_map<int, int16_t> Known;
    for (Instr &I : BB.Instrs) {
      auto lookup = [&](VReg R) -> std::optional<int16_t> {
        auto It = Known.find(R);
        if (It == Known.end())
          return std::nullopt;
        return It->second;
      };

      switch (I.Op) {
      case Opcode::Bin: {
        auto A = lookup(I.Srcs[0]);
        auto B = lookup(I.Srcs[1]);
        if (A && B) {
          int16_t V = evalBin(I.BinK, *A, *B);
          I.Op = Opcode::Const;
          I.Imm = V;
          I.Srcs.clear();
          Changed = true;
        }
        break;
      }
      case Opcode::Un: {
        auto A = lookup(I.Srcs[0]);
        if (A) {
          I.Op = Opcode::Const;
          I.Imm = evalUn(I.UnK, *A);
          I.Srcs.clear();
          Changed = true;
        }
        break;
      }
      // Note: Mov of a known constant is deliberately *not* rewritten into
      // a Const here — CSE canonicalizes duplicate constants into copies,
      // and folding them back would oscillate. Copy propagation and DCE
      // clean copies up instead; the Known map below still tracks the
      // value through the move.
      case Opcode::CondBr: {
        auto A = lookup(I.Srcs[0]);
        auto B = lookup(I.Srcs[1]);
        if (A && B) {
          bool Taken = evalCmp(I.PredK, *A, *B);
          I.Op = Opcode::Br;
          I.TrueBB = Taken ? I.TrueBB : I.FalseBB;
          I.FalseBB = -1;
          I.Srcs.clear();
          Changed = true;
        }
        break;
      }
      default:
        break;
      }

      // Update the known-constants map after the (possibly rewritten)
      // instruction.
      if (I.hasDst()) {
        if (I.Op == Opcode::Const)
          Known[I.Dst] = static_cast<int16_t>(I.Imm);
        else if (I.Op == Opcode::Mov) {
          auto A = lookup(I.Srcs[0]);
          if (A)
            Known[I.Dst] = *A;
          else
            Known.erase(I.Dst);
        } else {
          Known.erase(I.Dst);
        }
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

bool ucc::propagateCopies(Function &F) {
  bool Changed = false;
  for (BasicBlock &BB : F.Blocks) {
    // Active copies: Dst -> Src of a `Dst = mov Src` still valid here.
    std::unordered_map<int, int> Copy;
    auto invalidate = [&](VReg R) {
      Copy.erase(R);
      for (auto It = Copy.begin(); It != Copy.end();) {
        if (It->second == R)
          It = Copy.erase(It);
        else
          ++It;
      }
    };

    for (Instr &I : BB.Instrs) {
      for (VReg &S : I.Srcs) {
        auto It = Copy.find(S);
        if (It != Copy.end()) {
          S = It->second;
          Changed = true;
        }
      }
      if (I.hasDst()) {
        invalidate(I.Dst);
        if (I.Op == Opcode::Mov && I.Srcs[0] != I.Dst)
          Copy[I.Dst] = I.Srcs[0];
      }
      // Calls can't modify vregs of this function; nothing else to kill.
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Local CSE
//===----------------------------------------------------------------------===//

namespace {

/// Key identifying a pure computation for CSE.
struct ExprKey {
  Opcode Op;
  int SubKind; // BinKind or UnKind
  int64_t Imm;
  int Src0, Src1;

  bool operator<(const ExprKey &RHS) const {
    auto Tie = [](const ExprKey &K) {
      return std::tie(K.Op, K.SubKind, K.Imm, K.Src0, K.Src1);
    };
    return Tie(*this) < Tie(RHS);
  }
};

} // namespace

bool ucc::eliminateCommonSubexprs(Function &F) {
  bool Changed = false;
  for (BasicBlock &BB : F.Blocks) {
    std::map<ExprKey, int> Available; // expr -> vreg holding it
    auto killDefsOf = [&](VReg R) {
      for (auto It = Available.begin(); It != Available.end();) {
        const ExprKey &K = It->first;
        if (K.Src0 == R || K.Src1 == R || It->second == R)
          It = Available.erase(It);
        else
          ++It;
      }
    };

    for (Instr &I : BB.Instrs) {
      std::optional<ExprKey> Key;
      switch (I.Op) {
      case Opcode::Const:
        Key = ExprKey{Opcode::Const, 0, I.Imm, -1, -1};
        break;
      case Opcode::Bin:
        Key = ExprKey{Opcode::Bin, static_cast<int>(I.BinK), 0, I.Srcs[0],
                      I.Srcs[1]};
        break;
      case Opcode::Un:
        Key = ExprKey{Opcode::Un, static_cast<int>(I.UnK), 0, I.Srcs[0], -1};
        break;
      default:
        break;
      }

      if (Key) {
        auto It = Available.find(*Key);
        if (It != Available.end() && It->second != I.Dst) {
          // Replace the computation with a copy from the existing value.
          VReg Src = It->second;
          killDefsOf(I.Dst);
          I.Op = Opcode::Mov;
          I.Srcs = {Src};
          I.Imm = 0;
          Changed = true;
          continue;
        }
        killDefsOf(I.Dst);
        Available[*Key] = I.Dst;
        continue;
      }
      if (I.hasDst())
        killDefsOf(I.Dst);
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Dead-code elimination
//===----------------------------------------------------------------------===//

static bool isPure(const Instr &I) {
  switch (I.Op) {
  case Opcode::Const:
  case Opcode::Mov:
  case Opcode::Bin:
  case Opcode::Un:
  case Opcode::LoadG:
  case Opcode::LoadF:
    return true;
  default:
    return false;
  }
}

bool ucc::eliminateDeadCode(Function &F) {
  bool Changed = false;
  bool LocalChanged = true;
  while (LocalChanged) {
    LocalChanged = false;
    FlowGraph G = buildFlowGraph(F);
    Liveness L = computeLiveness(G);
    for (size_t B = 0; B < F.Blocks.size(); ++B) {
      BasicBlock &BB = F.Blocks[B];
      std::vector<BitVector> LiveAfter =
          L.liveAfterPerInstr(G, static_cast<int>(B));
      std::vector<Instr> Kept;
      Kept.reserve(BB.Instrs.size());
      for (size_t K = 0; K < BB.Instrs.size(); ++K) {
        Instr &I = BB.Instrs[K];
        if (isPure(I) && I.hasDst() &&
            !LiveAfter[K].test(static_cast<size_t>(I.Dst))) {
          LocalChanged = true;
          Changed = true;
          continue;
        }
        Kept.push_back(std::move(I));
      }
      BB.Instrs = std::move(Kept);
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// CFG simplification
//===----------------------------------------------------------------------===//

bool ucc::simplifyCFG(Function &F) {
  bool Changed = false;

  // 1. Thread branches through trivial forwarding blocks (a single `br`).
  auto forwardTarget = [&](int B) -> int {
    const BasicBlock &BB = F.Blocks[static_cast<size_t>(B)];
    if (BB.Instrs.size() == 1 && BB.Instrs[0].Op == Opcode::Br &&
        BB.Instrs[0].TrueBB != B)
      return BB.Instrs[0].TrueBB;
    return -1;
  };

  for (BasicBlock &BB : F.Blocks) {
    if (BB.Instrs.empty())
      continue;
    Instr &T = BB.Instrs.back();
    auto thread = [&](int &Target) {
      // Follow forwarding chains with a step bound to survive cycles.
      for (int Steps = 0; Steps < 8; ++Steps) {
        int Next = forwardTarget(Target);
        if (Next < 0)
          break;
        Target = Next;
        Changed = true;
      }
    };
    if (T.Op == Opcode::Br)
      thread(T.TrueBB);
    if (T.Op == Opcode::CondBr) {
      thread(T.TrueBB);
      thread(T.FalseBB);
      if (T.TrueBB == T.FalseBB) {
        T.Op = Opcode::Br;
        T.Srcs.clear();
        T.FalseBB = -1;
        Changed = true;
      }
    }
  }

  // 2. Remove unreachable blocks, remapping indices.
  size_t N = F.Blocks.size();
  std::vector<bool> Reachable(N, false);
  std::vector<int> Stack = {0};
  Reachable[0] = true;
  while (!Stack.empty()) {
    int B = Stack.back();
    Stack.pop_back();
    for (int S : F.Blocks[static_cast<size_t>(B)].successors()) {
      if (!Reachable[static_cast<size_t>(S)]) {
        Reachable[static_cast<size_t>(S)] = true;
        Stack.push_back(S);
      }
    }
  }

  bool AnyUnreachable = false;
  for (size_t B = 0; B < N; ++B)
    AnyUnreachable |= !Reachable[B];
  if (!AnyUnreachable)
    return Changed;

  std::vector<int> NewIndex(N, -1);
  std::vector<BasicBlock> NewBlocks;
  for (size_t B = 0; B < N; ++B) {
    if (!Reachable[B])
      continue;
    NewIndex[B] = static_cast<int>(NewBlocks.size());
    NewBlocks.push_back(std::move(F.Blocks[B]));
  }
  for (BasicBlock &BB : NewBlocks) {
    for (Instr &I : BB.Instrs) {
      if (I.TrueBB >= 0)
        I.TrueBB = NewIndex[static_cast<size_t>(I.TrueBB)];
      if (I.FalseBB >= 0)
        I.FalseBB = NewIndex[static_cast<size_t>(I.FalseBB)];
    }
  }
  F.Blocks = std::move(NewBlocks);
  return true;
}

//===----------------------------------------------------------------------===//
// Pipeline driver
//===----------------------------------------------------------------------===//

bool ucc::optimizeModule(Module &M, OptLevel Level) {
  if (Level == OptLevel::O0)
    return false;
  bool EverChanged = false;
  for (Function &F : M.Functions) {
    // Bounded fixpoint: each pass is monotone (shrinks or simplifies the
    // function), so a handful of rounds always suffices in practice.
    for (int Round = 0; Round < 8; ++Round) {
      bool Changed = false;
      Changed |= simplifyCFG(F);
      Changed |= foldConstants(F);
      Changed |= propagateCopies(F);
      Changed |= eliminateCommonSubexprs(F);
      Changed |= eliminateDeadCode(F);
      EverChanged |= Changed;
      if (!Changed)
        break;
    }
  }
  return EverChanged;
}
