//===- lp/LP.h - linear and 0/1 integer programming ------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver substrate behind UCC-RA (the paper uses LP_solve [2]): a
/// two-phase primal simplex with bounded variables, and a branch-and-bound
/// 0/1 ILP solver on top of it. Simplex pivots are counted so that
/// Figs. 13-15 (constraints / iterations / time-per-iteration as functions
/// of problem size) can be measured, and the ILP accepts an integral
/// *hint* solution — how the preferred-register tags speed up the solver
/// in section 5.6.
///
/// Two engines live behind this interface (docs/PERFORMANCE.md):
///  - the *sparse revised* engine (lp/Simplex.cpp) — sparse-column
///    storage, an eta-file basis representation with deterministic
///    reinversion, steepest-edge-lite pricing, and a warm-start entry
///    (`SparseSimplex::solveWarm`) that repairs a parent basis with dual
///    simplex after branching changes a bound. `solveLP`/`solveILP`
///    (best-first branch-and-bound with pseudo-cost branching and a
///    greedy rounding incumbent) run on it;
///  - the *dense reference* engine (lp/DenseSimplex.cpp) — the original
///    dense-tableau simplex and depth-first branch-and-bound, kept
///    byte-for-byte as the equivalence oracle
///    (`solveLPDense`/`solveILPDfs`, tests/SolverEquivalenceTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_LP_LP_H
#define UCC_LP_LP_H

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace ucc {

/// One linear constraint: sum(Coef_k * x_{Var_k}) <Sense> RHS.
struct LPConstraint {
  enum class Sense { LE, EQ, GE };
  std::vector<std::pair<int, double>> Terms;
  Sense S = Sense::LE;
  double RHS = 0.0;
};

/// A linear program: minimize Obj'x subject to constraints and bounds.
struct LPProblem {
  int NumVars = 0;
  std::vector<double> Obj;   ///< size NumVars
  std::vector<double> Lower; ///< size NumVars
  std::vector<double> Upper; ///< size NumVars
  std::vector<LPConstraint> Constraints;

  /// Adds a variable, returns its index.
  int addVar(double Cost, double Lo, double Hi) {
    Obj.push_back(Cost);
    Lower.push_back(Lo);
    Upper.push_back(Hi);
    return NumVars++;
  }

  /// Adds a 0/1 variable.
  int addBinaryVar(double Cost) { return addVar(Cost, 0.0, 1.0); }

  void addConstraint(LPConstraint C) {
    Constraints.push_back(std::move(C));
  }

  void addLE(std::vector<std::pair<int, double>> Terms, double RHS) {
    addConstraint({std::move(Terms), LPConstraint::Sense::LE, RHS});
  }
  void addGE(std::vector<std::pair<int, double>> Terms, double RHS) {
    addConstraint({std::move(Terms), LPConstraint::Sense::GE, RHS});
  }
  void addEQ(std::vector<std::pair<int, double>> Terms, double RHS) {
    addConstraint({std::move(Terms), LPConstraint::Sense::EQ, RHS});
  }
};

/// Solver outcome.
enum class SolveStatus {
  Optimal,    ///< proven optimal
  Feasible,   ///< integral solution found, search truncated by a limit
  Infeasible, ///< no feasible point
  Limit       ///< limit hit before any feasible point
};

/// A simplex basis snapshot: which column occupies each row plus the
/// bound each nonbasic column rests at. Captured by the sparse engine on
/// every completed solve and fed back to `SparseSimplex::solveWarm` so a
/// branch-and-bound child re-solves from its parent's basis instead of
/// from scratch. Column indexing is engine-internal (structural, then
/// slack, then artificial per row); a basis is only meaningful for the
/// problem (same constraints, any bounds) that produced it.
struct SimplexBasis {
  std::vector<int32_t> Basic;   ///< per row: the basic column
  std::vector<uint8_t> AtUpper; ///< per column: nonbasic at upper bound?
  bool valid() const { return !Basic.empty(); }
};

/// LP (relaxation) result.
struct LPResult {
  SolveStatus Status = SolveStatus::Infeasible;
  std::vector<double> X;
  double Objective = 0.0;
  int64_t Pivots = 0; ///< simplex iterations performed
  /// Final basis (sparse engine only; empty from the dense reference).
  SimplexBasis Basis;
};

/// Solves \p P with the two-phase bounded-variable simplex (the sparse
/// revised engine).
LPResult solveLP(const LPProblem &P,
                 int64_t MaxPivots = 2'000'000);

/// The seed dense-tableau simplex, kept unchanged as the reference
/// implementation for the randomized equivalence harness and as the
/// backend of solveBinaryByEnumeration.
LPResult solveLPDense(const LPProblem &P,
                      int64_t MaxPivots = 2'000'000);

/// The sparse revised simplex as a stateful engine: build once per
/// problem, then solve repeatedly under changing variable bounds —
/// exactly the branch-and-bound access pattern. Bound edits via
/// setVarBounds are cheap (no matrix rebuild); solveWarm re-solves from
/// a previously captured basis, repairing primal infeasibility
/// introduced by bound changes with bounded-variable dual simplex and
/// falling back to a cold solve when the basis cannot be reused.
class SparseSimplex {
public:
  explicit SparseSimplex(const LPProblem &P);
  ~SparseSimplex();
  SparseSimplex(SparseSimplex &&) noexcept;
  SparseSimplex &operator=(SparseSimplex &&) noexcept;

  /// Overrides the bounds of structural variable \p Var for subsequent
  /// solves (branching fixes a 0/1 variable by setting Lo == Hi).
  void setVarBounds(int Var, double Lo, double Hi);

  /// Cold solve: two-phase primal from the slack/artificial basis.
  LPResult solve(int64_t MaxPivots = 2'000'000);

  /// Warm solve from \p Warm (captured by a previous solve of this
  /// problem at any bounds). Counts its dual-repair and primal pivots
  /// into LPResult::Pivots like a cold solve.
  LPResult solveWarm(const SimplexBasis &Warm,
                     int64_t MaxPivots = 2'000'000);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Branch-and-bound options.
struct ILPOptions {
  int64_t MaxPivots = 20'000'000;
  int MaxNodes = 200'000;
  double TimeLimitSec = 60.0;
  /// Optional integral starting solution (e.g. from preferred-register
  /// tags). Seeds the incumbent so the search prunes earlier.
  const std::vector<double> *Hint = nullptr;
};

/// ILP result.
struct ILPResult {
  SolveStatus Status = SolveStatus::Infeasible;
  std::vector<double> X;
  double Objective = 0.0;
  int64_t Pivots = 0; ///< total simplex iterations across all nodes
  int Nodes = 0;      ///< branch-and-bound nodes explored
  /// True when the wall-clock limit cut the search short (the time limit
  /// is checked between the LP re-solves inside a node, not just at node
  /// entry). Also surfaced as the `lp.ilp_timeouts` counter.
  bool TimedOut = false;
};

/// Solves \p P with the variables in \p IntVars restricted to integers:
/// best-first branch-and-bound on the sparse engine, with warm-started
/// child re-solves, pseudo-cost branching, a greedy rounding incumbent,
/// and optional incumbent seeding from Opts.Hint.
ILPResult solveILP(const LPProblem &P, const std::vector<int> &IntVars,
                   const ILPOptions &Opts = {});

/// The seed depth-first branch-and-bound on the dense reference simplex,
/// kept unchanged as the equivalence oracle.
ILPResult solveILPDfs(const LPProblem &P, const std::vector<int> &IntVars,
                      const ILPOptions &Opts = {});

/// Checks that \p X satisfies every constraint and bound of \p P within
/// \p Tol (test and validation helper).
bool isFeasible(const LPProblem &P, const std::vector<double> &X,
                double Tol = 1e-6);

/// Objective value of \p X under \p P.
double objectiveValue(const LPProblem &P, const std::vector<double> &X);

/// Exhaustively enumerates all assignments of the (binary) \p IntVars and
/// returns the best feasible one. Exponential — ablation/test use only,
/// and the backend for the "exact nonlinear objective" comparison (A1/A3).
ILPResult solveBinaryByEnumeration(const LPProblem &P,
                                   const std::vector<int> &IntVars);

} // namespace ucc

#endif // UCC_LP_LP_H
