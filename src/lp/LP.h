//===- lp/LP.h - linear and 0/1 integer programming ------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver substrate behind UCC-RA (the paper uses LP_solve [2]): a
/// dense two-phase primal simplex with bounded variables, and a
/// branch-and-bound 0/1 ILP solver on top of it. Simplex pivots are counted
/// so that Figs. 13-15 (constraints / iterations / time-per-iteration as
/// functions of problem size) can be measured, and the ILP accepts an
/// integral *hint* solution — how the preferred-register tags speed up the
/// solver in section 5.6.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_LP_LP_H
#define UCC_LP_LP_H

#include <cstdint>
#include <limits>
#include <vector>

namespace ucc {

/// One linear constraint: sum(Coef_k * x_{Var_k}) <Sense> RHS.
struct LPConstraint {
  enum class Sense { LE, EQ, GE };
  std::vector<std::pair<int, double>> Terms;
  Sense S = Sense::LE;
  double RHS = 0.0;
};

/// A linear program: minimize Obj'x subject to constraints and bounds.
struct LPProblem {
  int NumVars = 0;
  std::vector<double> Obj;   ///< size NumVars
  std::vector<double> Lower; ///< size NumVars
  std::vector<double> Upper; ///< size NumVars
  std::vector<LPConstraint> Constraints;

  /// Adds a variable, returns its index.
  int addVar(double Cost, double Lo, double Hi) {
    Obj.push_back(Cost);
    Lower.push_back(Lo);
    Upper.push_back(Hi);
    return NumVars++;
  }

  /// Adds a 0/1 variable.
  int addBinaryVar(double Cost) { return addVar(Cost, 0.0, 1.0); }

  void addConstraint(LPConstraint C) {
    Constraints.push_back(std::move(C));
  }

  void addLE(std::vector<std::pair<int, double>> Terms, double RHS) {
    addConstraint({std::move(Terms), LPConstraint::Sense::LE, RHS});
  }
  void addGE(std::vector<std::pair<int, double>> Terms, double RHS) {
    addConstraint({std::move(Terms), LPConstraint::Sense::GE, RHS});
  }
  void addEQ(std::vector<std::pair<int, double>> Terms, double RHS) {
    addConstraint({std::move(Terms), LPConstraint::Sense::EQ, RHS});
  }
};

/// Solver outcome.
enum class SolveStatus {
  Optimal,    ///< proven optimal
  Feasible,   ///< integral solution found, search truncated by a limit
  Infeasible, ///< no feasible point
  Limit       ///< limit hit before any feasible point
};

/// LP (relaxation) result.
struct LPResult {
  SolveStatus Status = SolveStatus::Infeasible;
  std::vector<double> X;
  double Objective = 0.0;
  int64_t Pivots = 0; ///< simplex iterations performed
};

/// Solves \p P with the two-phase bounded-variable simplex.
LPResult solveLP(const LPProblem &P,
                 int64_t MaxPivots = 2'000'000);

/// Branch-and-bound options.
struct ILPOptions {
  int64_t MaxPivots = 20'000'000;
  int MaxNodes = 200'000;
  double TimeLimitSec = 60.0;
  /// Optional integral starting solution (e.g. from preferred-register
  /// tags). Seeds the incumbent so the search prunes earlier.
  const std::vector<double> *Hint = nullptr;
};

/// ILP result.
struct ILPResult {
  SolveStatus Status = SolveStatus::Infeasible;
  std::vector<double> X;
  double Objective = 0.0;
  int64_t Pivots = 0; ///< total simplex iterations across all nodes
  int Nodes = 0;      ///< branch-and-bound nodes explored
};

/// Solves \p P with the variables in \p IntVars restricted to integers.
ILPResult solveILP(const LPProblem &P, const std::vector<int> &IntVars,
                   const ILPOptions &Opts = {});

/// Checks that \p X satisfies every constraint and bound of \p P within
/// \p Tol (test and validation helper).
bool isFeasible(const LPProblem &P, const std::vector<double> &X,
                double Tol = 1e-6);

/// Objective value of \p X under \p P.
double objectiveValue(const LPProblem &P, const std::vector<double> &X);

/// Exhaustively enumerates all assignments of the (binary) \p IntVars and
/// returns the best feasible one. Exponential — ablation/test use only,
/// and the backend for the "exact nonlinear objective" comparison (A1/A3).
ILPResult solveBinaryByEnumeration(const LPProblem &P,
                                   const std::vector<int> &IntVars);

} // namespace ucc

#endif // UCC_LP_LP_H
