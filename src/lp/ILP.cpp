//===- lp/ILP.cpp - branch-and-bound over the simplex relaxation ----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Depth-first branch-and-bound 0/1 ILP solver on top of solveLP, with
/// most-fractional branching, nearer-side-first exploration and optional
/// incumbent seeding from a hint solution (the preferred-register tags of
/// section 5.6). Each solve reports node counts and wall time to the
/// telemetry registry (`lp.ilp_solves`, `lp.bb_nodes`, `lp.ilp_seconds`);
/// pivots are accounted by the underlying solveLP calls.
///
//===----------------------------------------------------------------------===//

#include "lp/LP.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

using namespace ucc;

namespace {

bool isIntegral(double V, double Tol = 1e-6) {
  return std::fabs(V - std::round(V)) <= Tol;
}

class BranchAndBound {
public:
  BranchAndBound(const LPProblem &P, const std::vector<int> &IntVars,
                 const ILPOptions &Opts)
      : Base(P), IntVars(IntVars), Opts(Opts) {}

  ILPResult run() {
    Start = std::chrono::steady_clock::now();
    Lower = Base.Lower;
    Upper = Base.Upper;

    // Seed the incumbent from the hint if it is feasible and integral.
    if (Opts.Hint && isFeasible(Base, *Opts.Hint)) {
      bool Integral = true;
      for (int V : IntVars)
        Integral &= isIntegral((*Opts.Hint)[static_cast<size_t>(V)]);
      if (Integral) {
        Incumbent = *Opts.Hint;
        IncumbentObj = objectiveValue(Base, *Opts.Hint);
        HaveIncumbent = true;
      }
    }

    dfs();

    ILPResult R;
    R.Pivots = Pivots;
    R.Nodes = Nodes;
    if (HaveIncumbent) {
      R.Status = HitLimit ? SolveStatus::Feasible : SolveStatus::Optimal;
      R.X = Incumbent;
      R.Objective = IncumbentObj;
    } else {
      R.Status = HitLimit ? SolveStatus::Limit : SolveStatus::Infeasible;
    }
    return R;
  }

private:
  bool limitsExceeded() {
    if (Pivots >= Opts.MaxPivots || Nodes >= Opts.MaxNodes) {
      HitLimit = true;
      return true;
    }
    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    if (Sec > Opts.TimeLimitSec) {
      HitLimit = true;
      return true;
    }
    return false;
  }

  void dfs() {
    if (limitsExceeded())
      return;
    ++Nodes;

    LPProblem Node = Base;
    Node.Lower = Lower;
    Node.Upper = Upper;
    LPResult Relax = solveLP(Node, Opts.MaxPivots - Pivots);
    Pivots += Relax.Pivots;

    if (Relax.Status == SolveStatus::Limit) {
      HitLimit = true;
      return;
    }
    if (Relax.Status == SolveStatus::Infeasible)
      return;
    if (HaveIncumbent && Relax.Objective >= IncumbentObj - 1e-9)
      return; // bound: cannot beat the incumbent

    // Find the most fractional integer variable.
    int BranchVar = -1;
    double BranchFrac = 0.0;
    for (int V : IntVars) {
      double X = Relax.X[static_cast<size_t>(V)];
      double Frac = std::fabs(X - std::round(X));
      if (Frac > 1e-6 && Frac > BranchFrac) {
        BranchFrac = Frac;
        BranchVar = V;
      }
    }

    if (BranchVar < 0) {
      // Integral: snap and accept.
      std::vector<double> X = Relax.X;
      for (int V : IntVars)
        X[static_cast<size_t>(V)] = std::round(X[static_cast<size_t>(V)]);
      if (!isFeasible(Base, X))
        return; // snapped point drifted out (numerically degenerate)
      double Obj = objectiveValue(Base, X);
      if (!HaveIncumbent || Obj < IncumbentObj - 1e-9) {
        Incumbent = std::move(X);
        IncumbentObj = Obj;
        HaveIncumbent = true;
      }
      return;
    }

    double X = Relax.X[static_cast<size_t>(BranchVar)];
    double Floor = std::floor(X);
    double SavedLo = Lower[static_cast<size_t>(BranchVar)];
    double SavedHi = Upper[static_cast<size_t>(BranchVar)];

    // Explore the side nearer the relaxed value first.
    bool DownFirst = (X - Floor) < 0.5;
    for (int Pass = 0; Pass < 2; ++Pass) {
      bool Down = (Pass == 0) == DownFirst;
      if (Down) {
        Upper[static_cast<size_t>(BranchVar)] = Floor;
        dfs();
        Upper[static_cast<size_t>(BranchVar)] = SavedHi;
      } else {
        Lower[static_cast<size_t>(BranchVar)] = Floor + 1.0;
        dfs();
        Lower[static_cast<size_t>(BranchVar)] = SavedLo;
      }
      if (limitsExceeded())
        return;
    }
  }

  const LPProblem &Base;
  const std::vector<int> &IntVars;
  const ILPOptions &Opts;

  std::vector<double> Lower, Upper;
  std::vector<double> Incumbent;
  double IncumbentObj = 0.0;
  bool HaveIncumbent = false;
  bool HitLimit = false;
  int64_t Pivots = 0;
  int Nodes = 0;
  std::chrono::steady_clock::time_point Start;
};

} // namespace

ILPResult ucc::solveILP(const LPProblem &P, const std::vector<int> &IntVars,
                        const ILPOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  ILPResult R = BranchAndBound(P, IntVars, Opts).run();
  if (Telemetry *T = currentTelemetry()) {
    T->addCounter("lp.ilp_solves");
    T->addCounter("lp.bb_nodes", R.Nodes);
    T->addGauge("lp.ilp_seconds",
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count());
  }
  return R;
}

ILPResult ucc::solveBinaryByEnumeration(const LPProblem &P,
                                        const std::vector<int> &IntVars) {
  assert(IntVars.size() <= 24 && "enumeration is for tiny problems only");
  for ([[maybe_unused]] int V : IntVars)
    assert(P.Lower[static_cast<size_t>(V)] >= -1e-9 &&
           P.Upper[static_cast<size_t>(V)] <= 1.0 + 1e-9 &&
           "enumeration expects binary variables");

  // Are there continuous variables too?
  std::vector<bool> IsInt(static_cast<size_t>(P.NumVars), false);
  for (int V : IntVars)
    IsInt[static_cast<size_t>(V)] = true;
  bool PureBinary = true;
  for (int J = 0; J < P.NumVars; ++J)
    PureBinary &= IsInt[static_cast<size_t>(J)];

  ILPResult Best;
  Best.Status = SolveStatus::Infeasible;

  uint64_t Combos = uint64_t(1) << IntVars.size();
  for (uint64_t Mask = 0; Mask < Combos; ++Mask) {
    if (PureBinary) {
      std::vector<double> X(static_cast<size_t>(P.NumVars), 0.0);
      for (size_t K = 0; K < IntVars.size(); ++K)
        X[static_cast<size_t>(IntVars[K])] =
            (Mask >> K) & 1 ? 1.0 : 0.0;
      // Respect fixed bounds.
      if (!isFeasible(P, X))
        continue;
      double Obj = objectiveValue(P, X);
      if (Best.Status == SolveStatus::Infeasible || Obj < Best.Objective) {
        Best.Status = SolveStatus::Optimal;
        Best.X = std::move(X);
        Best.Objective = Obj;
      }
      continue;
    }
    // Mixed: fix the binaries and let the LP place the continuous part.
    LPProblem Fixed = P;
    for (size_t K = 0; K < IntVars.size(); ++K) {
      double V = (Mask >> K) & 1 ? 1.0 : 0.0;
      Fixed.Lower[static_cast<size_t>(IntVars[K])] = V;
      Fixed.Upper[static_cast<size_t>(IntVars[K])] = V;
    }
    LPResult R = solveLP(Fixed);
    Best.Pivots += R.Pivots;
    if (R.Status != SolveStatus::Optimal)
      continue;
    if (Best.Status == SolveStatus::Infeasible ||
        R.Objective < Best.Objective) {
      Best.Status = SolveStatus::Optimal;
      Best.X = R.X;
      Best.Objective = R.Objective;
    }
  }
  return Best;
}
