//===- lp/ILP.cpp - branch-and-bound over the simplex relaxation ----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two 0/1 ILP solvers over the LP engines:
///
///  - `solveILP` (production): best-first branch-and-bound on the sparse
///    revised engine. The node queue is ordered by LP bound (ties by
///    creation order, so the search is deterministic); children are
///    solved eagerly, warm-started from their parent's basis via
///    `SparseSimplex::solveWarm`; branching uses pseudo-costs once a
///    variable has been branched in both directions (most-fractional
///    until then); every solved relaxation is also rounded greedily to
///    probe for an incumbent; and an integral hint (the
///    preferred-register tags of section 5.6) seeds the incumbent so the
///    bound prunes from the first node. The wall-clock limit is checked
///    between the child LP re-solves inside a node — not just at node
///    entry — and a truncated search reports `ILPResult::TimedOut` plus
///    the `lp.ilp_timeouts` counter. Each solve reports
///    `lp.ilp_solves`, `lp.bb_nodes` and `lp.ilp_seconds`; pivots are
///    accounted by the engine's solves.
///
///  - `solveILPDfs` (reference): the original depth-first search with
///    most-fractional branching and nearer-side-first exploration on the
///    dense-tableau simplex, kept unchanged as the equivalence oracle
///    for tests/SolverEquivalenceTest.cpp. Like `solveLPDense` it
///    reports no telemetry: the `lp.*` counters describe the production
///    engine only.
///
//===----------------------------------------------------------------------===//

#include "lp/LP.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <queue>

using namespace ucc;

namespace {

bool isIntegral(double V, double Tol = 1e-6) {
  return std::fabs(V - std::round(V)) <= Tol;
}

//===--- best-first search (production) --------------------------------------//

class BestFirstBB {
public:
  BestFirstBB(const LPProblem &P, const std::vector<int> &IntVars,
              const ILPOptions &Opts)
      : Base(P), IntVars(IntVars), Opts(Opts), Engine(P) {}

  ILPResult run() {
    Start = std::chrono::steady_clock::now();
    PcDownSum.assign(static_cast<size_t>(Base.NumVars), 0.0);
    PcUpSum.assign(static_cast<size_t>(Base.NumVars), 0.0);
    PcDownCount.assign(static_cast<size_t>(Base.NumVars), 0);
    PcUpCount.assign(static_cast<size_t>(Base.NumVars), 0);

    // Seed the incumbent from the hint if it is feasible and integral.
    if (Opts.Hint && isFeasible(Base, *Opts.Hint)) {
      bool Integral = true;
      for (int V : IntVars)
        Integral &= isIntegral((*Opts.Hint)[static_cast<size_t>(V)]);
      if (Integral) {
        Incumbent = *Opts.Hint;
        IncumbentObj = objectiveValue(Base, *Opts.Hint);
        HaveIncumbent = true;
      }
    }

    search();

    ILPResult R;
    R.Pivots = Pivots;
    R.Nodes = Nodes;
    R.TimedOut = TimedOut;
    if (HaveIncumbent) {
      R.Status = HitLimit ? SolveStatus::Feasible : SolveStatus::Optimal;
      R.X = Incumbent;
      R.Objective = IncumbentObj;
    } else {
      R.Status = HitLimit ? SolveStatus::Limit : SolveStatus::Infeasible;
    }
    return R;
  }

private:
  /// One branching decision relative to the root bounds.
  struct BoundChange {
    int Var;
    double Lo, Hi;
  };

  /// An enqueued node: its relaxation is already solved (LpBound, RelaxX,
  /// Basis are this node's own results), so the queue orders by true LP
  /// bounds and popping never triggers a solve.
  struct Node {
    double LpBound;
    int64_t Seq; ///< creation order, the deterministic tie-break
    std::vector<BoundChange> Changes; ///< path from the root
    std::vector<double> RelaxX;
    SimplexBasis Basis;
  };

  struct NodeOrder {
    bool operator()(const Node &A, const Node &B) const {
      if (A.LpBound != B.LpBound)
        return A.LpBound > B.LpBound; // min-heap on the bound
      return A.Seq > B.Seq;
    }
  };

  bool timeExpired() {
    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    if (Sec > Opts.TimeLimitSec) {
      HitLimit = true;
      TimedOut = true;
      return true;
    }
    return false;
  }

  bool limitsExceeded() {
    if (Pivots >= Opts.MaxPivots || Nodes >= Opts.MaxNodes) {
      HitLimit = true;
      return true;
    }
    return timeExpired();
  }

  /// Solves one node's relaxation under \p Changes, warm-started from
  /// \p WarmFrom when it holds a basis. Returns the engine result and
  /// restores the engine to root bounds afterwards.
  LPResult solveNode(const std::vector<BoundChange> &Changes,
                     const SimplexBasis &WarmFrom) {
    for (const BoundChange &C : Changes)
      Engine.setVarBounds(C.Var, C.Lo, C.Hi);
    int64_t Budget = Opts.MaxPivots - Pivots;
    if (Budget < 0)
      Budget = 0;
    LPResult R = WarmFrom.valid() ? Engine.solveWarm(WarmFrom, Budget)
                                  : Engine.solve(Budget);
    for (const BoundChange &C : Changes)
      Engine.setVarBounds(C.Var, Base.Lower[static_cast<size_t>(C.Var)],
                          Base.Upper[static_cast<size_t>(C.Var)]);
    Pivots += R.Pivots;
    ++Nodes;
    return R;
  }

  /// Greedy rounding probe: snap the integer variables of \p RelaxX to
  /// the nearest integer and accept the point as incumbent when it is
  /// feasible and better. Cheap, and on the UCC window models (where
  /// most relaxations are near-integral) it often closes the gap
  /// without any branching.
  void tryRounding(const std::vector<double> &RelaxX) {
    std::vector<double> X = RelaxX;
    for (int V : IntVars)
      X[static_cast<size_t>(V)] = std::round(X[static_cast<size_t>(V)]);
    if (!isFeasible(Base, X))
      return;
    double Obj = objectiveValue(Base, X);
    if (!HaveIncumbent || Obj < IncumbentObj - 1e-9) {
      Incumbent = std::move(X);
      IncumbentObj = Obj;
      HaveIncumbent = true;
    }
  }

  /// Picks the branching variable for \p RelaxX: pseudo-cost scoring
  /// over variables branched at least once in each direction, falling
  /// back to most-fractional while costs are uninitialized.
  int pickBranchVar(const std::vector<double> &RelaxX) const {
    int BestPc = -1;
    double BestPcScore = 0.0;
    int BestFracVar = -1;
    double BestFrac = 0.0;
    for (int V : IntVars) {
      double X = RelaxX[static_cast<size_t>(V)];
      double Frac = X - std::floor(X);
      double Dist = std::min(Frac, 1.0 - Frac);
      if (Dist <= 1e-6)
        continue;
      if (Dist > BestFrac) {
        BestFrac = Dist;
        BestFracVar = V;
      }
      if (PcDownCount[static_cast<size_t>(V)] > 0 &&
          PcUpCount[static_cast<size_t>(V)] > 0) {
        double Down = PcDownSum[static_cast<size_t>(V)] /
                      PcDownCount[static_cast<size_t>(V)] * Frac;
        double Up = PcUpSum[static_cast<size_t>(V)] /
                    PcUpCount[static_cast<size_t>(V)] * (1.0 - Frac);
        double Score = std::max(Down, 1e-9) * std::max(Up, 1e-9);
        if (Score > BestPcScore) {
          BestPcScore = Score;
          BestPc = V;
        }
      }
    }
    return BestPc >= 0 ? BestPc : BestFracVar;
  }

  void recordPseudoCost(int Var, bool Up, double Frac, double ParentObj,
                        double ChildObj) {
    double Dist = Up ? 1.0 - Frac : Frac;
    if (Dist < 1e-9)
      return;
    double Gain = std::max(0.0, ChildObj - ParentObj) / Dist;
    if (Up) {
      PcUpSum[static_cast<size_t>(Var)] += Gain;
      ++PcUpCount[static_cast<size_t>(Var)];
    } else {
      PcDownSum[static_cast<size_t>(Var)] += Gain;
      ++PcDownCount[static_cast<size_t>(Var)];
    }
  }

  void search() {
    if (limitsExceeded())
      return;

    LPResult Root = solveNode({}, SimplexBasis{});
    if (Root.Status == SolveStatus::Limit) {
      HitLimit = true;
      return;
    }
    if (Root.Status == SolveStatus::Infeasible)
      return;

    std::priority_queue<Node, std::vector<Node>, NodeOrder> Queue;
    int64_t NextSeq = 0;
    Queue.push(Node{Root.Objective, NextSeq++, {}, std::move(Root.X),
                    std::move(Root.Basis)});

    while (!Queue.empty()) {
      if (limitsExceeded())
        return;
      // Best-first bound break: the best open bound cannot beat the
      // incumbent, so neither can any other open node — proven optimal.
      if (HaveIncumbent && Queue.top().LpBound >= IncumbentObj - 1e-9)
        return;

      Node N = Queue.top();
      Queue.pop();

      tryRounding(N.RelaxX);
      if (HaveIncumbent && N.LpBound >= IncumbentObj - 1e-9)
        continue;

      int BranchVar = pickBranchVar(N.RelaxX);
      if (BranchVar < 0) {
        // Integral relaxation: snap and accept.
        std::vector<double> X = N.RelaxX;
        for (int V : IntVars)
          X[static_cast<size_t>(V)] = std::round(X[static_cast<size_t>(V)]);
        if (!isFeasible(Base, X))
          continue; // snapped point drifted out (numerically degenerate)
        double Obj = objectiveValue(Base, X);
        if (!HaveIncumbent || Obj < IncumbentObj - 1e-9) {
          Incumbent = std::move(X);
          IncumbentObj = Obj;
          HaveIncumbent = true;
        }
        continue;
      }

      double X = N.RelaxX[static_cast<size_t>(BranchVar)];
      double Floor = std::floor(X);
      double Frac = X - Floor;

      // Solve both children eagerly, warm-started from this node's
      // basis; the time limit is re-checked between the two re-solves.
      for (int Pass = 0; Pass < 2; ++Pass) {
        bool Down = Pass == 0;
        if (Pass > 0 && timeExpired())
          return;
        if (Pivots >= Opts.MaxPivots) {
          HitLimit = true;
          return;
        }

        std::vector<BoundChange> Changes = N.Changes;
        double Lo = Base.Lower[static_cast<size_t>(BranchVar)];
        double Hi = Base.Upper[static_cast<size_t>(BranchVar)];
        for (const BoundChange &C : N.Changes)
          if (C.Var == BranchVar) {
            Lo = C.Lo;
            Hi = C.Hi;
          }
        if (Down)
          Hi = Floor;
        else
          Lo = Floor + 1.0;
        if (Lo > Hi)
          continue; // branch empties the domain
        Changes.push_back({BranchVar, Lo, Hi});

        LPResult Child = solveNode(Changes, N.Basis);
        if (Child.Status == SolveStatus::Limit) {
          HitLimit = true;
          return;
        }
        if (Child.Status == SolveStatus::Infeasible)
          continue;
        recordPseudoCost(BranchVar, !Down, Frac, N.LpBound, Child.Objective);
        if (HaveIncumbent && Child.Objective >= IncumbentObj - 1e-9)
          continue; // bound: cannot beat the incumbent
        // Child bounds can numerically dip below the parent's; clamp so
        // the queue order stays a valid lower-bound order.
        double ChildBound = std::max(Child.Objective, N.LpBound);
        Queue.push(Node{ChildBound, NextSeq++, std::move(Changes),
                        std::move(Child.X), std::move(Child.Basis)});
      }
    }
  }

  const LPProblem &Base;
  const std::vector<int> &IntVars;
  const ILPOptions &Opts;
  SparseSimplex Engine;

  std::vector<double> Incumbent;
  double IncumbentObj = 0.0;
  bool HaveIncumbent = false;
  bool HitLimit = false;
  bool TimedOut = false;
  int64_t Pivots = 0;
  int Nodes = 0;
  std::vector<double> PcDownSum, PcUpSum;
  std::vector<int> PcDownCount, PcUpCount;
  std::chrono::steady_clock::time_point Start;
};

//===--- depth-first search (reference oracle) --------------------------------//

class DfsBB {
public:
  DfsBB(const LPProblem &P, const std::vector<int> &IntVars,
        const ILPOptions &Opts)
      : Base(P), IntVars(IntVars), Opts(Opts) {}

  ILPResult run() {
    Start = std::chrono::steady_clock::now();
    Lower = Base.Lower;
    Upper = Base.Upper;

    if (Opts.Hint && isFeasible(Base, *Opts.Hint)) {
      bool Integral = true;
      for (int V : IntVars)
        Integral &= isIntegral((*Opts.Hint)[static_cast<size_t>(V)]);
      if (Integral) {
        Incumbent = *Opts.Hint;
        IncumbentObj = objectiveValue(Base, *Opts.Hint);
        HaveIncumbent = true;
      }
    }

    dfs();

    ILPResult R;
    R.Pivots = Pivots;
    R.Nodes = Nodes;
    R.TimedOut = TimedOut;
    if (HaveIncumbent) {
      R.Status = HitLimit ? SolveStatus::Feasible : SolveStatus::Optimal;
      R.X = Incumbent;
      R.Objective = IncumbentObj;
    } else {
      R.Status = HitLimit ? SolveStatus::Limit : SolveStatus::Infeasible;
    }
    return R;
  }

private:
  bool limitsExceeded() {
    if (Pivots >= Opts.MaxPivots || Nodes >= Opts.MaxNodes) {
      HitLimit = true;
      return true;
    }
    double Sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    if (Sec > Opts.TimeLimitSec) {
      HitLimit = true;
      TimedOut = true;
      return true;
    }
    return false;
  }

  void dfs() {
    if (limitsExceeded())
      return;
    ++Nodes;

    LPProblem Node = Base;
    Node.Lower = Lower;
    Node.Upper = Upper;
    LPResult Relax = solveLPDense(Node, Opts.MaxPivots - Pivots);
    Pivots += Relax.Pivots;

    if (Relax.Status == SolveStatus::Limit) {
      HitLimit = true;
      return;
    }
    if (Relax.Status == SolveStatus::Infeasible)
      return;
    if (HaveIncumbent && Relax.Objective >= IncumbentObj - 1e-9)
      return; // bound: cannot beat the incumbent

    // Find the most fractional integer variable.
    int BranchVar = -1;
    double BranchFrac = 0.0;
    for (int V : IntVars) {
      double X = Relax.X[static_cast<size_t>(V)];
      double Frac = std::fabs(X - std::round(X));
      if (Frac > 1e-6 && Frac > BranchFrac) {
        BranchFrac = Frac;
        BranchVar = V;
      }
    }

    if (BranchVar < 0) {
      // Integral: snap and accept.
      std::vector<double> X = Relax.X;
      for (int V : IntVars)
        X[static_cast<size_t>(V)] = std::round(X[static_cast<size_t>(V)]);
      if (!isFeasible(Base, X))
        return; // snapped point drifted out (numerically degenerate)
      double Obj = objectiveValue(Base, X);
      if (!HaveIncumbent || Obj < IncumbentObj - 1e-9) {
        Incumbent = std::move(X);
        IncumbentObj = Obj;
        HaveIncumbent = true;
      }
      return;
    }

    double X = Relax.X[static_cast<size_t>(BranchVar)];
    double Floor = std::floor(X);
    double SavedLo = Lower[static_cast<size_t>(BranchVar)];
    double SavedHi = Upper[static_cast<size_t>(BranchVar)];

    // Explore the side nearer the relaxed value first.
    bool DownFirst = (X - Floor) < 0.5;
    for (int Pass = 0; Pass < 2; ++Pass) {
      bool Down = (Pass == 0) == DownFirst;
      if (Down) {
        Upper[static_cast<size_t>(BranchVar)] = Floor;
        dfs();
        Upper[static_cast<size_t>(BranchVar)] = SavedHi;
      } else {
        Lower[static_cast<size_t>(BranchVar)] = Floor + 1.0;
        dfs();
        Lower[static_cast<size_t>(BranchVar)] = SavedLo;
      }
      if (limitsExceeded())
        return;
    }
  }

  const LPProblem &Base;
  const std::vector<int> &IntVars;
  const ILPOptions &Opts;

  std::vector<double> Lower, Upper;
  std::vector<double> Incumbent;
  double IncumbentObj = 0.0;
  bool HaveIncumbent = false;
  bool HitLimit = false;
  bool TimedOut = false;
  int64_t Pivots = 0;
  int Nodes = 0;
  std::chrono::steady_clock::time_point Start;
};

} // namespace

ILPResult ucc::solveILP(const LPProblem &P, const std::vector<int> &IntVars,
                        const ILPOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  ILPResult R = BestFirstBB(P, IntVars, Opts).run();
  if (Telemetry *T = currentTelemetry()) {
    T->addCounter("lp.ilp_solves");
    T->addCounter("lp.bb_nodes", R.Nodes);
    if (R.TimedOut)
      T->addCounter("lp.ilp_timeouts");
    T->addGauge("lp.ilp_seconds",
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count());
  }
  return R;
}

ILPResult ucc::solveILPDfs(const LPProblem &P, const std::vector<int> &IntVars,
                           const ILPOptions &Opts) {
  return DfsBB(P, IntVars, Opts).run();
}

ILPResult ucc::solveBinaryByEnumeration(const LPProblem &P,
                                        const std::vector<int> &IntVars) {
  assert(IntVars.size() <= 24 && "enumeration is for tiny problems only");
  for ([[maybe_unused]] int V : IntVars)
    assert(P.Lower[static_cast<size_t>(V)] >= -1e-9 &&
           P.Upper[static_cast<size_t>(V)] <= 1.0 + 1e-9 &&
           "enumeration expects binary variables");

  // Are there continuous variables too?
  std::vector<bool> IsInt(static_cast<size_t>(P.NumVars), false);
  for (int V : IntVars)
    IsInt[static_cast<size_t>(V)] = true;
  bool PureBinary = true;
  for (int J = 0; J < P.NumVars; ++J)
    PureBinary &= IsInt[static_cast<size_t>(J)];

  ILPResult Best;
  Best.Status = SolveStatus::Infeasible;

  uint64_t Combos = uint64_t(1) << IntVars.size();
  for (uint64_t Mask = 0; Mask < Combos; ++Mask) {
    if (PureBinary) {
      std::vector<double> X(static_cast<size_t>(P.NumVars), 0.0);
      for (size_t K = 0; K < IntVars.size(); ++K)
        X[static_cast<size_t>(IntVars[K])] =
            (Mask >> K) & 1 ? 1.0 : 0.0;
      // Respect fixed bounds.
      if (!isFeasible(P, X))
        continue;
      double Obj = objectiveValue(P, X);
      if (Best.Status == SolveStatus::Infeasible || Obj < Best.Objective) {
        Best.Status = SolveStatus::Optimal;
        Best.X = std::move(X);
        Best.Objective = Obj;
      }
      continue;
    }
    // Mixed: fix the binaries and let the LP place the continuous part.
    // The dense reference engine keeps this oracle independent of the
    // production engine it is used to validate.
    LPProblem Fixed = P;
    for (size_t K = 0; K < IntVars.size(); ++K) {
      double V = (Mask >> K) & 1 ? 1.0 : 0.0;
      Fixed.Lower[static_cast<size_t>(IntVars[K])] = V;
      Fixed.Upper[static_cast<size_t>(IntVars[K])] = V;
    }
    LPResult R = solveLPDense(Fixed);
    Best.Pivots += R.Pivots;
    if (R.Status != SolveStatus::Optimal)
      continue;
    if (Best.Status == SolveStatus::Infeasible ||
        R.Objective < Best.Objective) {
      Best.Status = SolveStatus::Optimal;
      Best.X = R.X;
      Best.Objective = R.Objective;
    }
  }
  return Best;
}
