//===- lp/DenseSimplex.cpp - the seed dense-tableau reference simplex -----===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original dense-tableau two-phase bounded-variable primal simplex,
/// kept algorithmically unchanged as the *reference* engine: the
/// randomized equivalence harness (tests/SolverEquivalenceTest.cpp)
/// asserts that the production sparse engine (lp/Simplex.cpp) reproduces
/// its objectives, and solveBinaryByEnumeration runs on it so the
/// enumeration oracle stays independent of the engine under test.
/// Variables carry individual bounds; slack variables make every row an
/// equality; artificial variables are created only for rows whose initial
/// residual cannot be absorbed by a slack. Dantzig pricing with a Bland
/// fallback after a run of degenerate steps. Reference solves report no
/// telemetry — the `lp.*` counters describe the production engine only.
///
//===----------------------------------------------------------------------===//

#include "lp/LP.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ucc;

namespace {

constexpr double Eps = 1e-9;
constexpr double PivotTol = 1e-8;
constexpr double Inf = std::numeric_limits<double>::infinity();

class DenseSimplex {
public:
  DenseSimplex(const LPProblem &P, int64_t MaxPivots)
      : P(P), MaxPivots(MaxPivots) {}

  LPResult run() {
    build();

    // Phase 1: minimize the sum of artificials (skipped when none exist).
    if (NumArtificials > 0) {
      std::vector<double> SavedCost = Cost;
      for (double &C : Cost)
        C = 0.0;
      for (int J = FirstArtificial; J < NumTotal; ++J)
        Cost[static_cast<size_t>(J)] = 1.0;

      if (!iterate())
        return finish(SolveStatus::Limit);
      if (currentObjective() > 1e-6)
        return finish(SolveStatus::Infeasible);

      // Freeze artificials at zero and restore the real objective.
      for (int J = FirstArtificial; J < NumTotal; ++J) {
        Lo[static_cast<size_t>(J)] = 0.0;
        Hi[static_cast<size_t>(J)] = 0.0;
        XVal[static_cast<size_t>(J)] = 0.0;
      }
      Cost = SavedCost;
    }

    if (!iterate())
      return finish(SolveStatus::Limit);
    return finish(SolveStatus::Optimal);
  }

private:
  //===--- problem assembly ------------------------------------------------//

  void build() {
    int N = P.NumVars;
    int M = static_cast<int>(P.Constraints.size());
    NumStructural = N;
    // Layout: [structural | slack per row | artificials (as needed)].
    FirstSlack = N;
    FirstArtificial = N + M;

    // Count artificials after computing residuals; allocate worst case.
    NumTotal = N + 2 * M;
    Cost.assign(static_cast<size_t>(NumTotal), 0.0);
    Lo.assign(static_cast<size_t>(NumTotal), 0.0);
    Hi.assign(static_cast<size_t>(NumTotal), 0.0);
    XVal.assign(static_cast<size_t>(NumTotal), 0.0);
    AtUpper.assign(static_cast<size_t>(NumTotal), false);

    for (int J = 0; J < N; ++J) {
      Cost[static_cast<size_t>(J)] = P.Obj[static_cast<size_t>(J)];
      Lo[static_cast<size_t>(J)] = P.Lower[static_cast<size_t>(J)];
      Hi[static_cast<size_t>(J)] = P.Upper[static_cast<size_t>(J)];
      // Nonbasic start: at the finite bound nearest zero.
      double V = 0.0;
      if (Lo[static_cast<size_t>(J)] > 0.0 ||
          !std::isfinite(Hi[static_cast<size_t>(J)]))
        V = Lo[static_cast<size_t>(J)];
      else if (Hi[static_cast<size_t>(J)] < 0.0)
        V = Hi[static_cast<size_t>(J)];
      else
        V = Lo[static_cast<size_t>(J)];
      XVal[static_cast<size_t>(J)] = V;
      AtUpper[static_cast<size_t>(J)] =
          V == Hi[static_cast<size_t>(J)] &&
          Hi[static_cast<size_t>(J)] != Lo[static_cast<size_t>(J)];
    }

    // Dense tableau rows.
    Tab.assign(static_cast<size_t>(M) * static_cast<size_t>(NumTotal), 0.0);
    Basis.assign(static_cast<size_t>(M), -1);
    Beta.assign(static_cast<size_t>(M), 0.0);
    NumRows = M;
    NumArtificials = 0;

    for (int I = 0; I < M; ++I) {
      const LPConstraint &C = P.Constraints[static_cast<size_t>(I)];
      double Residual = C.RHS;
      for (const auto &[Var, Coef] : C.Terms) {
        at(I, Var) += Coef;
        Residual -= Coef * XVal[static_cast<size_t>(Var)];
      }
      // Slack bounds by sense.
      int SlackVar = FirstSlack + I;
      switch (C.S) {
      case LPConstraint::Sense::LE:
        Lo[static_cast<size_t>(SlackVar)] = 0.0;
        Hi[static_cast<size_t>(SlackVar)] = Inf;
        break;
      case LPConstraint::Sense::GE:
        Lo[static_cast<size_t>(SlackVar)] = -Inf;
        Hi[static_cast<size_t>(SlackVar)] = 0.0;
        break;
      case LPConstraint::Sense::EQ:
        Lo[static_cast<size_t>(SlackVar)] = 0.0;
        Hi[static_cast<size_t>(SlackVar)] = 0.0;
        break;
      }
      at(I, SlackVar) = 1.0;

      // Can the slack itself be the initial basic variable at Residual?
      bool SlackFits = Residual >= Lo[static_cast<size_t>(SlackVar)] - Eps &&
                       Residual <= Hi[static_cast<size_t>(SlackVar)] + Eps;
      if (SlackFits) {
        Basis[static_cast<size_t>(I)] = SlackVar;
        Beta[static_cast<size_t>(I)] = Residual;
        XVal[static_cast<size_t>(SlackVar)] = Residual;
      } else {
        // Park the slack at its finite bound nearest the residual; an
        // artificial variable absorbs the rest.
        double SLo = Lo[static_cast<size_t>(SlackVar)];
        double SHi = Hi[static_cast<size_t>(SlackVar)];
        double SV = std::min(std::max(Residual, SLo), SHi);
        XVal[static_cast<size_t>(SlackVar)] = SV;
        AtUpper[static_cast<size_t>(SlackVar)] = SV == SHi && SHi != SLo;
        double Rest = Residual - SV;

        int Art = FirstArtificial + NumArtificials++;
        Lo[static_cast<size_t>(Art)] = 0.0;
        Hi[static_cast<size_t>(Art)] = Inf;
        // Keep the basis column an identity column: when the artificial
        // would need coefficient -1, flip the whole row instead.
        if (Rest < 0.0)
          for (int J = 0; J <= SlackVar; ++J)
            at(I, J) = -at(I, J);
        at(I, Art) = 1.0;
        Basis[static_cast<size_t>(I)] = Art;
        Beta[static_cast<size_t>(I)] = std::fabs(Rest);
        XVal[static_cast<size_t>(Art)] = Beta[static_cast<size_t>(I)];
      }
    }
    // Shrink the column space to what we actually used.
    NumUsed = FirstArtificial + NumArtificials;
    IsBasic.assign(static_cast<size_t>(NumUsed), false);
    for (int I = 0; I < NumRows; ++I)
      IsBasic[static_cast<size_t>(Basis[static_cast<size_t>(I)])] = true;
  }

  double &at(int Row, int Col) {
    return Tab[static_cast<size_t>(Row) * static_cast<size_t>(NumTotal) +
               static_cast<size_t>(Col)];
  }
  double atc(int Row, int Col) const {
    return Tab[static_cast<size_t>(Row) * static_cast<size_t>(NumTotal) +
               static_cast<size_t>(Col)];
  }

  double currentObjective() const {
    double Obj = 0.0;
    for (int J = 0; J < NumUsed; ++J)
      Obj += Cost[static_cast<size_t>(J)] * XVal[static_cast<size_t>(J)];
    return Obj;
  }

  //===--- the simplex loop ------------------------------------------------//

  /// Runs pivots until optimality. Returns false on the pivot budget.
  bool iterate() {
    int DegenerateRun = 0;
    while (true) {
      if (Pivots >= MaxPivots)
        return false;

      // Reduced costs d_j = c_j - cB' * T_j.
      std::vector<double> CB(static_cast<size_t>(NumRows));
      for (int I = 0; I < NumRows; ++I)
        CB[static_cast<size_t>(I)] =
            Cost[static_cast<size_t>(Basis[static_cast<size_t>(I)])];

      bool UseBland = DegenerateRun > 64;
      int Entering = -1;
      int Dir = 0; // +1 entering rises from lower, -1 falls from upper
      double BestScore = UseBland ? 0.0 : 1e-7;

      for (int J = 0; J < NumUsed; ++J) {
        if (IsBasic[static_cast<size_t>(J)])
          continue;
        if (Lo[static_cast<size_t>(J)] == Hi[static_cast<size_t>(J)])
          continue; // fixed variable
        double D = Cost[static_cast<size_t>(J)];
        for (int I = 0; I < NumRows; ++I) {
          double T = atc(I, J);
          if (T != 0.0)
            D -= CB[static_cast<size_t>(I)] * T;
        }
        int CandDir = 0;
        if (!AtUpper[static_cast<size_t>(J)] && D < -1e-7)
          CandDir = +1;
        else if (AtUpper[static_cast<size_t>(J)] && D > 1e-7)
          CandDir = -1;
        if (CandDir == 0)
          continue;
        if (UseBland) {
          Entering = J;
          Dir = CandDir;
          break;
        }
        double Score = std::fabs(D);
        if (Score > BestScore) {
          BestScore = Score;
          Entering = J;
          Dir = CandDir;
        }
      }
      if (Entering < 0)
        return true; // optimal

      // Ratio test.
      double TMax = Hi[static_cast<size_t>(Entering)] -
                    Lo[static_cast<size_t>(Entering)]; // bound flip
      int LeaveRow = -1;
      int LeaveToUpper = 0;
      for (int I = 0; I < NumRows; ++I) {
        double Coef = -Dir * atc(I, Entering);
        if (std::fabs(Coef) < PivotTol)
          continue;
        int BV = Basis[static_cast<size_t>(I)];
        double Limit;
        int HitsUpper;
        if (Coef > 0.0) {
          if (!std::isfinite(Hi[static_cast<size_t>(BV)]))
            continue;
          Limit = (Hi[static_cast<size_t>(BV)] -
                   Beta[static_cast<size_t>(I)]) /
                  Coef;
          HitsUpper = 1;
        } else {
          if (!std::isfinite(Lo[static_cast<size_t>(BV)]))
            continue;
          Limit = (Lo[static_cast<size_t>(BV)] -
                   Beta[static_cast<size_t>(I)]) /
                  Coef;
          HitsUpper = 0;
        }
        Limit = std::max(0.0, Limit);
        if (Limit < TMax - Eps ||
            (Limit < TMax + Eps && LeaveRow >= 0 &&
             Basis[static_cast<size_t>(I)] <
                 Basis[static_cast<size_t>(LeaveRow)])) {
          TMax = Limit;
          LeaveRow = I;
          LeaveToUpper = HitsUpper;
        }
      }

      if (!std::isfinite(TMax))
        return true; // unbounded direction: cannot happen with our models,
                     // but bail out gracefully by declaring optimality of
                     // the current (feasible) point.

      ++Pivots;
      DegenerateRun = TMax < Eps ? DegenerateRun + 1 : 0;

      // Move the entering variable and update basic values.
      double NewEnterVal = XVal[static_cast<size_t>(Entering)] + Dir * TMax;
      for (int I = 0; I < NumRows; ++I) {
        double Coef = -Dir * atc(I, Entering);
        if (Coef != 0.0)
          Beta[static_cast<size_t>(I)] += TMax * Coef;
        XVal[static_cast<size_t>(Basis[static_cast<size_t>(I)])] =
            Beta[static_cast<size_t>(I)];
      }
      XVal[static_cast<size_t>(Entering)] = NewEnterVal;

      if (LeaveRow < 0) {
        // Bound flip: no basis change.
        AtUpper[static_cast<size_t>(Entering)] = Dir > 0;
        continue;
      }

      int Leaving = Basis[static_cast<size_t>(LeaveRow)];
      double Snap = LeaveToUpper ? Hi[static_cast<size_t>(Leaving)]
                                 : Lo[static_cast<size_t>(Leaving)];
      XVal[static_cast<size_t>(Leaving)] = Snap;
      AtUpper[static_cast<size_t>(Leaving)] = LeaveToUpper != 0;
      IsBasic[static_cast<size_t>(Leaving)] = false;
      IsBasic[static_cast<size_t>(Entering)] = true;
      Basis[static_cast<size_t>(LeaveRow)] = Entering;
      Beta[static_cast<size_t>(LeaveRow)] = NewEnterVal;

      // Row reduction on the tableau.
      double PivotVal = atc(LeaveRow, Entering);
      assert(std::fabs(PivotVal) > PivotTol && "numerically bad pivot");
      double InvPivot = 1.0 / PivotVal;
      for (int J = 0; J < NumUsed; ++J)
        at(LeaveRow, J) *= InvPivot;
      for (int I = 0; I < NumRows; ++I) {
        if (I == LeaveRow)
          continue;
        double Factor = atc(I, Entering);
        if (Factor == 0.0)
          continue;
        for (int J = 0; J < NumUsed; ++J)
          at(I, J) -= Factor * atc(LeaveRow, J);
      }
    }
  }

  LPResult finish(SolveStatus Status) {
    LPResult R;
    R.Status = Status;
    R.Pivots = Pivots;
    R.X.resize(static_cast<size_t>(NumStructural));
    for (int J = 0; J < NumStructural; ++J)
      R.X[static_cast<size_t>(J)] = XVal[static_cast<size_t>(J)];
    R.Objective = 0.0;
    for (int J = 0; J < NumStructural; ++J)
      R.Objective += P.Obj[static_cast<size_t>(J)] *
                     R.X[static_cast<size_t>(J)];
    return R;
  }

  const LPProblem &P;
  int64_t MaxPivots;
  int64_t Pivots = 0;

  int NumStructural = 0;
  int FirstSlack = 0;
  int FirstArtificial = 0;
  int NumArtificials = 0;
  int NumTotal = 0; ///< allocated column count
  int NumUsed = 0;  ///< columns actually in play
  int NumRows = 0;

  std::vector<double> Tab;
  std::vector<double> Cost, Lo, Hi, XVal, Beta;
  std::vector<int> Basis;
  std::vector<bool> AtUpper, IsBasic;
};

} // namespace

LPResult ucc::solveLPDense(const LPProblem &P, int64_t MaxPivots) {
  assert(static_cast<int>(P.Obj.size()) == P.NumVars &&
         static_cast<int>(P.Lower.size()) == P.NumVars &&
         static_cast<int>(P.Upper.size()) == P.NumVars &&
         "malformed LP problem");
  DenseSimplex S(P, MaxPivots);
  return S.run();
}
