//===- lp/Simplex.cpp - sparse revised bounded-variable simplex -----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production LP engine: a two-phase bounded-variable primal simplex
/// in *revised* form. The constraint matrix is stored once as sparse
/// columns (structural, then one slack per row, then one lazily-activated
/// artificial per row — the latter two are singletons, so the initial
/// basis inverse is the identity) and the basis inverse is represented as
/// a product-form eta file: each basis change appends one sparse eta
/// vector, FTRAN/BTRAN apply the file forward/backward, and a
/// deterministic reinversion (singleton columns first, largest-pivot row
/// selection) rebuilds the file from the basis when it grows past a
/// threshold or when a warm start installs a foreign basis.
///
/// Pricing is steepest-edge-lite: reduced costs from a fresh BTRAN each
/// iteration (self-correcting), scored as d^2 over a static column-norm
/// reference weight, with the same Bland fallback after a degenerate run
/// as the dense reference engine. The ratio test (bound flips, leaving
/// tie-break by smaller column) mirrors lp/DenseSimplex.cpp so the two
/// engines are comparable pivot-for-pivot in spirit, and the randomized
/// harness in tests/SolverEquivalenceTest.cpp pins their objectives to
/// each other.
///
/// Warm starts (`SparseSimplex::solveWarm`): branch-and-bound re-solves
/// a node's LP after tightening one variable's bounds. The parent's
/// optimal basis stays *dual* feasible under bound changes, so the child
/// re-solve reinstalls that basis, repairs primal infeasibility with
/// bounded-variable dual simplex pivots (with bound-flip "long steps"),
/// and polishes with the primal loop — typically a handful of pivots
/// instead of a from-scratch solve. Any doubt (singular reinversion,
/// dual infeasibility, iteration cap) falls back to a cold solve, so the
/// warm path is a pure optimization.
///
/// Every solve reports pivots and wall time to the telemetry registry
/// (`lp.solves`, `lp.pivots`, `lp.lp_seconds`, plus `lp.warm_solves` for
/// warm-started re-solves) so Figs. 13-15 can be read off a trace.
///
//===----------------------------------------------------------------------===//

#include "lp/LP.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

using namespace ucc;

namespace {

constexpr double Eps = 1e-9;
constexpr double PivotTol = 1e-8;
constexpr double DualFeasTol = 1e-7;
constexpr double Inf = std::numeric_limits<double>::infinity();

/// Basis changes between reinversions. Each eta lengthens FTRAN/BTRAN,
/// so the file is periodically collapsed back to at most one eta per
/// basic column; reinversion also recomputes the basic values from
/// scratch, keeping numerical drift bounded.
constexpr int RefactorEvery = 128;

} // namespace

struct SparseSimplex::Impl {
  //===--- immutable problem shape -----------------------------------------//

  int NumStructural = 0;
  int NumRows = 0;
  int FirstSlack = 0;
  int FirstArtificial = 0;
  int NumTotal = 0; ///< structural + slack + artificial columns

  /// All columns in CSC form: structural columns from the constraints
  /// (duplicate terms merged), then singleton slack and artificial
  /// columns (+1 at their row).
  std::vector<int> ColStart;
  std::vector<int> ColRowIdx;
  std::vector<double> ColValue;

  std::vector<double> Rhs;                ///< per row
  std::vector<double> SlackLo, SlackHi;   ///< per row, from the sense
  std::vector<double> BaseCost;           ///< structural objective
  std::vector<double> VarLo, VarHi;       ///< current structural bounds
  std::vector<double> ColNorm;            ///< 1 + ||A_j||^2 (pricing)

  //===--- per-solve state --------------------------------------------------//

  std::vector<double> Cost, Lo, Hi, XVal, Beta;
  std::vector<int> Basis;           ///< per row: basic column
  std::vector<int> BasisPos;        ///< per column: row, or -1
  std::vector<uint8_t> AtUpper;

  /// One product-form eta: replaces column Row of the identity. Col
  /// holds (row, E[row][Row]) pairs including the diagonal entry.
  struct Eta {
    int Row;
    std::vector<std::pair<int, double>> Col;
  };
  std::vector<Eta> Etas;
  int BasisChanges = 0; ///< since the last reinversion

  int64_t Pivots = 0;
  int64_t MaxPivots = 0;

  std::vector<double> DenseA; ///< FTRAN scratch (size NumRows)
  std::vector<double> DenseY; ///< BTRAN scratch (size NumRows)

  //===--- construction -----------------------------------------------------//

  explicit Impl(const LPProblem &P) {
    assert(static_cast<int>(P.Obj.size()) == P.NumVars &&
           static_cast<int>(P.Lower.size()) == P.NumVars &&
           static_cast<int>(P.Upper.size()) == P.NumVars &&
           "malformed LP problem");
    NumStructural = P.NumVars;
    NumRows = static_cast<int>(P.Constraints.size());
    FirstSlack = NumStructural;
    FirstArtificial = NumStructural + NumRows;
    NumTotal = NumStructural + 2 * NumRows;

    BaseCost = P.Obj;
    VarLo = P.Lower;
    VarHi = P.Upper;

    Rhs.resize(static_cast<size_t>(NumRows));
    SlackLo.resize(static_cast<size_t>(NumRows));
    SlackHi.resize(static_cast<size_t>(NumRows));

    // Gather structural entries, merging duplicate (row, var) terms the
    // way the dense tableau's `at(I, Var) += Coef` did.
    std::vector<std::vector<std::pair<int, double>>> ByCol(
        static_cast<size_t>(NumStructural));
    for (int I = 0; I < NumRows; ++I) {
      const LPConstraint &C = P.Constraints[static_cast<size_t>(I)];
      Rhs[static_cast<size_t>(I)] = C.RHS;
      switch (C.S) {
      case LPConstraint::Sense::LE:
        SlackLo[static_cast<size_t>(I)] = 0.0;
        SlackHi[static_cast<size_t>(I)] = Inf;
        break;
      case LPConstraint::Sense::GE:
        SlackLo[static_cast<size_t>(I)] = -Inf;
        SlackHi[static_cast<size_t>(I)] = 0.0;
        break;
      case LPConstraint::Sense::EQ:
        SlackLo[static_cast<size_t>(I)] = 0.0;
        SlackHi[static_cast<size_t>(I)] = 0.0;
        break;
      }
      for (const auto &[Var, Coef] : C.Terms)
        ByCol[static_cast<size_t>(Var)].push_back({I, Coef});
    }

    ColStart.assign(static_cast<size_t>(NumTotal) + 1, 0);
    size_t Nnz = 0;
    for (int J = 0; J < NumStructural; ++J) {
      auto &Entries = ByCol[static_cast<size_t>(J)];
      std::sort(Entries.begin(), Entries.end(),
                [](const auto &A, const auto &B) { return A.first < B.first; });
      // Merge duplicates in place.
      size_t Out = 0;
      for (size_t K = 0; K < Entries.size(); ++K) {
        if (Out > 0 && Entries[Out - 1].first == Entries[K].first)
          Entries[Out - 1].second += Entries[K].second;
        else
          Entries[Out++] = Entries[K];
      }
      Entries.resize(Out);
      Nnz += Out;
    }
    Nnz += 2 * static_cast<size_t>(NumRows); // slack + artificial singletons
    ColRowIdx.reserve(Nnz);
    ColValue.reserve(Nnz);
    ColNorm.assign(static_cast<size_t>(NumTotal), 1.0);
    for (int J = 0; J < NumStructural; ++J) {
      ColStart[static_cast<size_t>(J)] = static_cast<int>(ColRowIdx.size());
      for (const auto &[Row, Val] : ByCol[static_cast<size_t>(J)]) {
        ColRowIdx.push_back(Row);
        ColValue.push_back(Val);
        ColNorm[static_cast<size_t>(J)] += Val * Val;
      }
    }
    for (int I = 0; I < NumRows; ++I) {
      ColStart[static_cast<size_t>(FirstSlack + I)] =
          static_cast<int>(ColRowIdx.size());
      ColRowIdx.push_back(I);
      ColValue.push_back(1.0);
      ColNorm[static_cast<size_t>(FirstSlack + I)] = 2.0;
    }
    for (int I = 0; I < NumRows; ++I) {
      ColStart[static_cast<size_t>(FirstArtificial + I)] =
          static_cast<int>(ColRowIdx.size());
      ColRowIdx.push_back(I);
      ColValue.push_back(1.0);
      ColNorm[static_cast<size_t>(FirstArtificial + I)] = 2.0;
    }
    ColStart[static_cast<size_t>(NumTotal)] =
        static_cast<int>(ColRowIdx.size());

    DenseA.assign(static_cast<size_t>(NumRows), 0.0);
    DenseY.assign(static_cast<size_t>(NumRows), 0.0);
  }

  //===--- sparse column access ---------------------------------------------//

  double colDot(const std::vector<double> &Y, int J) const {
    double D = 0.0;
    for (int K = ColStart[static_cast<size_t>(J)];
         K < ColStart[static_cast<size_t>(J) + 1]; ++K)
      D += Y[static_cast<size_t>(ColRowIdx[static_cast<size_t>(K)])] *
           ColValue[static_cast<size_t>(K)];
    return D;
  }

  void colScatter(int J, std::vector<double> &X) const {
    std::fill(X.begin(), X.end(), 0.0);
    for (int K = ColStart[static_cast<size_t>(J)];
         K < ColStart[static_cast<size_t>(J) + 1]; ++K)
      X[static_cast<size_t>(ColRowIdx[static_cast<size_t>(K)])] =
          ColValue[static_cast<size_t>(K)];
  }

  //===--- eta file ----------------------------------------------------------//

  /// X := E_k ... E_1 X (forward application; X = B^-1 v for v scattered
  /// into X beforehand).
  void ftranApply(std::vector<double> &X) const {
    for (const Eta &E : Etas) {
      double T = X[static_cast<size_t>(E.Row)];
      if (T == 0.0)
        continue;
      X[static_cast<size_t>(E.Row)] = 0.0;
      for (const auto &[Row, Val] : E.Col)
        X[static_cast<size_t>(Row)] += Val * T;
    }
  }

  /// Y := E_1' ... E_k' Y (transposes in reverse; Y = B^-T w for w
  /// loaded into Y beforehand).
  void btranApply(std::vector<double> &Y) const {
    for (size_t K = Etas.size(); K-- > 0;) {
      const Eta &E = Etas[K];
      double S = 0.0;
      for (const auto &[Row, Val] : E.Col)
        S += Val * Y[static_cast<size_t>(Row)];
      Y[static_cast<size_t>(E.Row)] = S;
    }
  }

  /// Appends the eta for a pivot on \p Alpha at \p Row (|Alpha[Row]|
  /// already checked against PivotTol).
  void pushEta(int Row, const std::vector<double> &Alpha) {
    Eta E;
    E.Row = Row;
    double InvPivot = 1.0 / Alpha[static_cast<size_t>(Row)];
    for (int I = 0; I < NumRows; ++I) {
      double V = Alpha[static_cast<size_t>(I)];
      if (V == 0.0)
        continue;
      if (I == Row)
        E.Col.push_back({I, InvPivot});
      else
        E.Col.push_back({I, -V * InvPivot});
    }
    Etas.push_back(std::move(E));
  }

  /// Rebuilds the eta file from the current basic column set (singleton
  /// columns first, then ascending sparsity, largest-pivot row choice —
  /// fully deterministic), reassigning rows to basic columns, and
  /// recomputes the basic values from scratch. Returns false when the
  /// basis is numerically singular.
  bool refactor() {
    std::vector<int> Cols(Basis.begin(), Basis.end());
    std::sort(Cols.begin(), Cols.end(), [&](int A, int B) {
      int NnzA = ColStart[static_cast<size_t>(A) + 1] -
                 ColStart[static_cast<size_t>(A)];
      int NnzB = ColStart[static_cast<size_t>(B) + 1] -
                 ColStart[static_cast<size_t>(B)];
      if (NnzA != NnzB)
        return NnzA < NnzB;
      return A < B;
    });

    Etas.clear();
    std::vector<uint8_t> Assigned(static_cast<size_t>(NumRows), 0);
    std::vector<int> NewBasis(static_cast<size_t>(NumRows), -1);
    for (int C : Cols) {
      colScatter(C, DenseA);
      ftranApply(DenseA);
      int PivotRow = -1;
      double BestAbs = PivotTol;
      for (int I = 0; I < NumRows; ++I) {
        if (Assigned[static_cast<size_t>(I)])
          continue;
        double V = std::fabs(DenseA[static_cast<size_t>(I)]);
        if (V > BestAbs) {
          BestAbs = V;
          PivotRow = I;
        }
      }
      if (PivotRow < 0)
        return false; // singular
      Assigned[static_cast<size_t>(PivotRow)] = 1;
      NewBasis[static_cast<size_t>(PivotRow)] = C;
      // Identity columns (slack/artificial with untouched row) need no eta.
      bool IsIdentity = true;
      for (int I = 0; I < NumRows; ++I) {
        double V = DenseA[static_cast<size_t>(I)];
        if (I == PivotRow ? V != 1.0 : V != 0.0) {
          IsIdentity = false;
          break;
        }
      }
      if (!IsIdentity)
        pushEta(PivotRow, DenseA);
    }
    Basis = std::move(NewBasis);
    std::fill(BasisPos.begin(), BasisPos.end(), -1);
    for (int I = 0; I < NumRows; ++I)
      BasisPos[static_cast<size_t>(Basis[static_cast<size_t>(I)])] = I;
    BasisChanges = 0;
    computeBeta();
    return true;
  }

  /// Beta := B^-1 (b - N x_N), refreshing XVal for the basics.
  void computeBeta() {
    std::vector<double> R = Rhs;
    for (int J = 0; J < NumTotal; ++J) {
      if (BasisPos[static_cast<size_t>(J)] >= 0)
        continue;
      double V = XVal[static_cast<size_t>(J)];
      if (V == 0.0)
        continue;
      for (int K = ColStart[static_cast<size_t>(J)];
           K < ColStart[static_cast<size_t>(J) + 1]; ++K)
        R[static_cast<size_t>(ColRowIdx[static_cast<size_t>(K)])] -=
            ColValue[static_cast<size_t>(K)] * V;
    }
    ftranApply(R);
    Beta = std::move(R);
    for (int I = 0; I < NumRows; ++I)
      XVal[static_cast<size_t>(Basis[static_cast<size_t>(I)])] =
          Beta[static_cast<size_t>(I)];
  }

  //===--- solve-state setup -------------------------------------------------//

  /// Resets bounds/costs/values for a fresh solve under the current
  /// structural bounds. Artificials start fixed at zero; coldStart()
  /// activates the ones it needs.
  void prepareState() {
    Cost.assign(static_cast<size_t>(NumTotal), 0.0);
    Lo.assign(static_cast<size_t>(NumTotal), 0.0);
    Hi.assign(static_cast<size_t>(NumTotal), 0.0);
    XVal.assign(static_cast<size_t>(NumTotal), 0.0);
    AtUpper.assign(static_cast<size_t>(NumTotal), 0);
    for (int J = 0; J < NumStructural; ++J) {
      Cost[static_cast<size_t>(J)] = BaseCost[static_cast<size_t>(J)];
      Lo[static_cast<size_t>(J)] = VarLo[static_cast<size_t>(J)];
      Hi[static_cast<size_t>(J)] = VarHi[static_cast<size_t>(J)];
    }
    for (int I = 0; I < NumRows; ++I) {
      Lo[static_cast<size_t>(FirstSlack + I)] = SlackLo[static_cast<size_t>(I)];
      Hi[static_cast<size_t>(FirstSlack + I)] = SlackHi[static_cast<size_t>(I)];
    }
    Basis.assign(static_cast<size_t>(NumRows), -1);
    BasisPos.assign(static_cast<size_t>(NumTotal), -1);
    Beta.assign(static_cast<size_t>(NumRows), 0.0);
    Etas.clear();
    BasisChanges = 0;
  }

  /// The dense engine's initial nonbasic placement: the finite bound
  /// nearest zero.
  void placeNonbasicStructurals() {
    for (int J = 0; J < NumStructural; ++J) {
      double L = Lo[static_cast<size_t>(J)], H = Hi[static_cast<size_t>(J)];
      double V;
      if (L > 0.0 || !std::isfinite(H))
        V = L;
      else if (H < 0.0)
        V = H;
      else
        V = L;
      XVal[static_cast<size_t>(J)] = V;
      AtUpper[static_cast<size_t>(J)] = V == H && H != L;
    }
  }

  /// Slack-or-artificial starting basis (B = I, empty eta file).
  /// Returns the number of active artificials; their phase-1 costs are
  /// installed by phase1Costs().
  int coldStart() {
    placeNonbasicStructurals();
    int Activated = 0;
    // Row residuals r_i = b_i - sum_j A_ij x_j over nonbasic structurals.
    std::vector<double> Residual = Rhs;
    for (int J = 0; J < NumStructural; ++J) {
      double V = XVal[static_cast<size_t>(J)];
      if (V == 0.0)
        continue;
      for (int K = ColStart[static_cast<size_t>(J)];
           K < ColStart[static_cast<size_t>(J) + 1]; ++K)
        Residual[static_cast<size_t>(ColRowIdx[static_cast<size_t>(K)])] -=
            ColValue[static_cast<size_t>(K)] * V;
    }
    for (int I = 0; I < NumRows; ++I) {
      int SlackVar = FirstSlack + I;
      double R = Residual[static_cast<size_t>(I)];
      bool SlackFits = R >= Lo[static_cast<size_t>(SlackVar)] - Eps &&
                       R <= Hi[static_cast<size_t>(SlackVar)] + Eps;
      if (SlackFits) {
        Basis[static_cast<size_t>(I)] = SlackVar;
        Beta[static_cast<size_t>(I)] = R;
        XVal[static_cast<size_t>(SlackVar)] = R;
        continue;
      }
      // Park the slack at its finite bound nearest the residual; the
      // row's artificial absorbs the rest. The artificial keeps its +1
      // coefficient; a negative rest gives it a [rest, 0] range and a
      // phase-1 cost of -1 so phase 1 still minimizes |rest|.
      double SLo = Lo[static_cast<size_t>(SlackVar)];
      double SHi = Hi[static_cast<size_t>(SlackVar)];
      double SV = std::min(std::max(R, SLo), SHi);
      XVal[static_cast<size_t>(SlackVar)] = SV;
      AtUpper[static_cast<size_t>(SlackVar)] = SV == SHi && SHi != SLo;
      double Rest = R - SV;

      int Art = FirstArtificial + I;
      if (Rest >= 0.0) {
        Lo[static_cast<size_t>(Art)] = 0.0;
        Hi[static_cast<size_t>(Art)] = Inf;
      } else {
        Lo[static_cast<size_t>(Art)] = -Inf;
        Hi[static_cast<size_t>(Art)] = 0.0;
      }
      Basis[static_cast<size_t>(I)] = Art;
      Beta[static_cast<size_t>(I)] = Rest;
      XVal[static_cast<size_t>(Art)] = Rest;
      ++Activated;
    }
    for (int I = 0; I < NumRows; ++I)
      BasisPos[static_cast<size_t>(Basis[static_cast<size_t>(I)])] = I;
    return Activated;
  }

  /// Installs phase-1 costs: +-1 on the active artificials so the
  /// objective is the total absolute infeasibility.
  void phase1Costs() {
    for (double &C : Cost)
      C = 0.0;
    for (int I = 0; I < NumRows; ++I) {
      int Art = FirstArtificial + I;
      if (Lo[static_cast<size_t>(Art)] == Hi[static_cast<size_t>(Art)])
        continue; // never activated
      Cost[static_cast<size_t>(Art)] =
          Hi[static_cast<size_t>(Art)] > 0.0 ? 1.0 : -1.0;
    }
  }

  /// Freezes artificials at zero and restores the real objective.
  void realCosts() {
    for (int J = 0; J < NumTotal; ++J)
      Cost[static_cast<size_t>(J)] = 0.0;
    for (int J = 0; J < NumStructural; ++J)
      Cost[static_cast<size_t>(J)] = BaseCost[static_cast<size_t>(J)];
    for (int I = 0; I < NumRows; ++I) {
      int Art = FirstArtificial + I;
      Lo[static_cast<size_t>(Art)] = 0.0;
      Hi[static_cast<size_t>(Art)] = 0.0;
      if (BasisPos[static_cast<size_t>(Art)] < 0)
        XVal[static_cast<size_t>(Art)] = 0.0;
    }
  }

  double currentObjective() const {
    double Obj = 0.0;
    for (int J = 0; J < NumTotal; ++J)
      Obj += Cost[static_cast<size_t>(J)] * XVal[static_cast<size_t>(J)];
    return Obj;
  }

  //===--- the primal loop ---------------------------------------------------//

  /// Pivots until optimality under the installed costs. Returns false on
  /// the pivot budget.
  bool primalIterate() {
    int DegenerateRun = 0;
    bool RetriedAfterRefactor = false;
    while (true) {
      if (Pivots >= MaxPivots)
        return false;
      if (BasisChanges >= RefactorEvery) {
        bool Ok = refactor();
        assert(Ok && "basis became singular during the primal loop");
        (void)Ok;
      }

      // y = B^-T cB; d_j = c_j - y . A_j.
      for (int I = 0; I < NumRows; ++I)
        DenseY[static_cast<size_t>(I)] =
            Cost[static_cast<size_t>(Basis[static_cast<size_t>(I)])];
      btranApply(DenseY);

      bool UseBland = DegenerateRun > 64;
      int Entering = -1;
      int Dir = 0; // +1 entering rises from lower, -1 falls from upper
      double BestScore = 0.0;

      for (int J = 0; J < NumTotal; ++J) {
        if (BasisPos[static_cast<size_t>(J)] >= 0)
          continue;
        if (Lo[static_cast<size_t>(J)] == Hi[static_cast<size_t>(J)])
          continue; // fixed variable
        double D = Cost[static_cast<size_t>(J)] - colDot(DenseY, J);
        int CandDir = 0;
        if (!AtUpper[static_cast<size_t>(J)] && D < -DualFeasTol)
          CandDir = +1;
        else if (AtUpper[static_cast<size_t>(J)] && D > DualFeasTol)
          CandDir = -1;
        if (CandDir == 0)
          continue;
        if (UseBland) {
          Entering = J;
          Dir = CandDir;
          break;
        }
        // Steepest-edge-lite: d^2 over the static reference weight.
        double Score = D * D / ColNorm[static_cast<size_t>(J)];
        if (Score > BestScore) {
          BestScore = Score;
          Entering = J;
          Dir = CandDir;
        }
      }
      if (Entering < 0)
        return true; // optimal

      colScatter(Entering, DenseA);
      ftranApply(DenseA);

      // Ratio test (bound flip at TMax; leaving tie-break by smaller
      // basic column, as in the dense engine).
      double TMax = Hi[static_cast<size_t>(Entering)] -
                    Lo[static_cast<size_t>(Entering)];
      int LeaveRow = -1;
      int LeaveToUpper = 0;
      for (int I = 0; I < NumRows; ++I) {
        double Coef = -Dir * DenseA[static_cast<size_t>(I)];
        if (std::fabs(Coef) < PivotTol)
          continue;
        int BV = Basis[static_cast<size_t>(I)];
        double Limit;
        int HitsUpper;
        if (Coef > 0.0) {
          if (!std::isfinite(Hi[static_cast<size_t>(BV)]))
            continue;
          Limit =
              (Hi[static_cast<size_t>(BV)] - Beta[static_cast<size_t>(I)]) /
              Coef;
          HitsUpper = 1;
        } else {
          if (!std::isfinite(Lo[static_cast<size_t>(BV)]))
            continue;
          Limit =
              (Lo[static_cast<size_t>(BV)] - Beta[static_cast<size_t>(I)]) /
              Coef;
          HitsUpper = 0;
        }
        Limit = std::max(0.0, Limit);
        if (Limit < TMax - Eps ||
            (Limit < TMax + Eps && LeaveRow >= 0 &&
             Basis[static_cast<size_t>(I)] <
                 Basis[static_cast<size_t>(LeaveRow)])) {
          TMax = Limit;
          LeaveRow = I;
          LeaveToUpper = HitsUpper;
        }
      }

      if (!std::isfinite(TMax))
        return true; // unbounded direction: declare the current feasible
                     // point optimal, like the dense engine

      if (LeaveRow >= 0 &&
          std::fabs(DenseA[static_cast<size_t>(LeaveRow)]) <= PivotTol) {
        // The chosen pivot is numerically unusable; collapse the eta
        // file once and re-derive the iteration from fresh numbers.
        assert(!RetriedAfterRefactor && "unstable pivot after reinversion");
        (void)RetriedAfterRefactor;
        RetriedAfterRefactor = true;
        bool Ok = refactor();
        assert(Ok && "basis became singular during the primal loop");
        (void)Ok;
        continue;
      }
      RetriedAfterRefactor = false;

      ++Pivots;
      DegenerateRun = TMax < Eps ? DegenerateRun + 1 : 0;

      double NewEnterVal = XVal[static_cast<size_t>(Entering)] + Dir * TMax;
      for (int I = 0; I < NumRows; ++I) {
        double Coef = -Dir * DenseA[static_cast<size_t>(I)];
        if (Coef != 0.0) {
          Beta[static_cast<size_t>(I)] += TMax * Coef;
          XVal[static_cast<size_t>(Basis[static_cast<size_t>(I)])] =
              Beta[static_cast<size_t>(I)];
        }
      }
      XVal[static_cast<size_t>(Entering)] = NewEnterVal;

      if (LeaveRow < 0) {
        // Bound flip: no basis change.
        AtUpper[static_cast<size_t>(Entering)] = Dir > 0;
        continue;
      }

      int Leaving = Basis[static_cast<size_t>(LeaveRow)];
      double Snap = LeaveToUpper ? Hi[static_cast<size_t>(Leaving)]
                                 : Lo[static_cast<size_t>(Leaving)];
      XVal[static_cast<size_t>(Leaving)] = Snap;
      AtUpper[static_cast<size_t>(Leaving)] =
          static_cast<uint8_t>(LeaveToUpper);
      BasisPos[static_cast<size_t>(Leaving)] = -1;
      BasisPos[static_cast<size_t>(Entering)] = LeaveRow;
      Basis[static_cast<size_t>(LeaveRow)] = Entering;
      Beta[static_cast<size_t>(LeaveRow)] = NewEnterVal;

      pushEta(LeaveRow, DenseA);
      ++BasisChanges;
    }
  }

  //===--- dual repair (warm starts) -----------------------------------------//

  enum class DualOutcome { Feasible, Infeasible, Limit, Abandon };

  /// Bounded-variable dual simplex: drives primal-infeasible basics to
  /// their violated bound while preserving dual feasibility. Used only
  /// to repair a warm-started basis after bound changes.
  DualOutcome dualRepair() {
    // Reduced costs are maintained incrementally across dual pivots.
    for (int I = 0; I < NumRows; ++I)
      DenseY[static_cast<size_t>(I)] =
          Cost[static_cast<size_t>(Basis[static_cast<size_t>(I)])];
    btranApply(DenseY);
    std::vector<double> D(static_cast<size_t>(NumTotal), 0.0);
    for (int J = 0; J < NumTotal; ++J) {
      if (BasisPos[static_cast<size_t>(J)] >= 0)
        continue;
      D[static_cast<size_t>(J)] =
          Cost[static_cast<size_t>(J)] - colDot(DenseY, J);
      // The warm basis must be dual feasible (it was primal-optimal for
      // the parent); anything else means the basis is stale.
      if (Lo[static_cast<size_t>(J)] == Hi[static_cast<size_t>(J)])
        continue;
      if (!AtUpper[static_cast<size_t>(J)] &&
          D[static_cast<size_t>(J)] < -1e-6)
        return DualOutcome::Abandon;
      if (AtUpper[static_cast<size_t>(J)] && D[static_cast<size_t>(J)] > 1e-6)
        return DualOutcome::Abandon;
    }

    int64_t Iterations = 0;
    int64_t IterationCap = 4 * static_cast<int64_t>(NumRows) + 256;
    std::vector<double> W(static_cast<size_t>(NumTotal), 0.0);
    while (true) {
      if (Pivots >= MaxPivots)
        return DualOutcome::Limit;
      if (++Iterations > IterationCap)
        return DualOutcome::Abandon;
      if (BasisChanges >= RefactorEvery)
        if (!refactor())
          return DualOutcome::Abandon;

      // Most-violated basic leaves (ties: smaller row).
      int LeaveRow = -1;
      double WorstViol = 1e-7;
      bool LeaveAtLower = true;
      for (int I = 0; I < NumRows; ++I) {
        int BV = Basis[static_cast<size_t>(I)];
        double B = Beta[static_cast<size_t>(I)];
        double Below = Lo[static_cast<size_t>(BV)] - B;
        double Above = B - Hi[static_cast<size_t>(BV)];
        if (Below > WorstViol) {
          WorstViol = Below;
          LeaveRow = I;
          LeaveAtLower = true;
        }
        if (Above > WorstViol) {
          WorstViol = Above;
          LeaveRow = I;
          LeaveAtLower = false;
        }
      }
      if (LeaveRow < 0)
        return DualOutcome::Feasible;

      // Pivot row: w_j = (B^-T e_r) . A_j.
      std::fill(DenseY.begin(), DenseY.end(), 0.0);
      DenseY[static_cast<size_t>(LeaveRow)] = 1.0;
      btranApply(DenseY);

      // Dual ratio test over admissible entering columns: the ones whose
      // move pushes beta_r toward the violated bound; among them the
      // smallest |d|/|w| keeps every reduced cost on its feasible side.
      int Entering = -1;
      double BestRatio = 0.0;
      double EnterW = 0.0;
      for (int J = 0; J < NumTotal; ++J) {
        if (BasisPos[static_cast<size_t>(J)] >= 0)
          continue;
        if (Lo[static_cast<size_t>(J)] == Hi[static_cast<size_t>(J)])
          continue;
        double WJ = colDot(DenseY, J);
        W[static_cast<size_t>(J)] = WJ;
        if (std::fabs(WJ) < PivotTol)
          continue;
        bool Admissible =
            LeaveAtLower
                ? (!AtUpper[static_cast<size_t>(J)] ? WJ < 0.0 : WJ > 0.0)
                : (!AtUpper[static_cast<size_t>(J)] ? WJ > 0.0 : WJ < 0.0);
        if (!Admissible)
          continue;
        double Ratio = std::fabs(D[static_cast<size_t>(J)]) / std::fabs(WJ);
        if (Entering < 0 || Ratio < BestRatio - Eps ||
            (Ratio < BestRatio + Eps && J < Entering)) {
          Entering = J;
          BestRatio = Ratio;
          EnterW = WJ;
        }
      }
      if (Entering < 0)
        return DualOutcome::Infeasible; // dual unbounded

      colScatter(Entering, DenseA);
      ftranApply(DenseA);
      double AlphaR = DenseA[static_cast<size_t>(LeaveRow)];
      if (std::fabs(AlphaR) <= PivotTol)
        return DualOutcome::Abandon; // numerically stale basis

      int LeaveCol = Basis[static_cast<size_t>(LeaveRow)];
      double Target = LeaveAtLower ? Lo[static_cast<size_t>(LeaveCol)]
                                   : Hi[static_cast<size_t>(LeaveCol)];
      // beta_r responds to x_q as -w_q; step Delta moves it to Target.
      double Delta =
          (Beta[static_cast<size_t>(LeaveRow)] - Target) / EnterW;

      double Range = Hi[static_cast<size_t>(Entering)] -
                     Lo[static_cast<size_t>(Entering)];
      if (std::isfinite(Range) && std::fabs(Delta) > Range + Eps) {
        // Long step: the entering column hits its opposite bound before
        // the leaving row reaches its target — a bound flip; the row
        // stays (less) violated and the loop continues.
        double Flip = AtUpper[static_cast<size_t>(Entering)] ? -Range : Range;
        for (int I = 0; I < NumRows; ++I) {
          double A = DenseA[static_cast<size_t>(I)];
          if (A != 0.0) {
            Beta[static_cast<size_t>(I)] -= Flip * A;
            XVal[static_cast<size_t>(Basis[static_cast<size_t>(I)])] =
                Beta[static_cast<size_t>(I)];
          }
        }
        AtUpper[static_cast<size_t>(Entering)] =
            !AtUpper[static_cast<size_t>(Entering)];
        XVal[static_cast<size_t>(Entering)] =
            AtUpper[static_cast<size_t>(Entering)]
                ? Hi[static_cast<size_t>(Entering)]
                : Lo[static_cast<size_t>(Entering)];
        ++Pivots;
        continue;
      }

      // Basis change: r leaves at Target, q enters at XVal_q + Delta.
      double Theta = D[static_cast<size_t>(Entering)] / EnterW;
      for (int J = 0; J < NumTotal; ++J) {
        if (BasisPos[static_cast<size_t>(J)] >= 0 || J == Entering)
          continue;
        if (W[static_cast<size_t>(J)] != 0.0)
          D[static_cast<size_t>(J)] -= Theta * W[static_cast<size_t>(J)];
      }
      D[static_cast<size_t>(LeaveCol)] = -Theta;
      D[static_cast<size_t>(Entering)] = 0.0;

      double NewEnterVal = XVal[static_cast<size_t>(Entering)] + Delta;
      for (int I = 0; I < NumRows; ++I) {
        double A = DenseA[static_cast<size_t>(I)];
        if (A != 0.0) {
          Beta[static_cast<size_t>(I)] -= Delta * A;
          XVal[static_cast<size_t>(Basis[static_cast<size_t>(I)])] =
              Beta[static_cast<size_t>(I)];
        }
      }
      XVal[static_cast<size_t>(LeaveCol)] = Target;
      AtUpper[static_cast<size_t>(LeaveCol)] =
          static_cast<uint8_t>(!LeaveAtLower);
      BasisPos[static_cast<size_t>(LeaveCol)] = -1;
      BasisPos[static_cast<size_t>(Entering)] = LeaveRow;
      Basis[static_cast<size_t>(LeaveRow)] = Entering;
      Beta[static_cast<size_t>(LeaveRow)] = NewEnterVal;
      XVal[static_cast<size_t>(Entering)] = NewEnterVal;
      pushEta(LeaveRow, DenseA);
      ++BasisChanges;
      ++Pivots;
    }
  }

  //===--- drivers ------------------------------------------------------------//

  LPResult finish(SolveStatus Status) {
    LPResult R;
    R.Status = Status;
    R.Pivots = Pivots;
    R.X.resize(static_cast<size_t>(NumStructural));
    for (int J = 0; J < NumStructural; ++J)
      R.X[static_cast<size_t>(J)] = XVal[static_cast<size_t>(J)];
    R.Objective = 0.0;
    for (int J = 0; J < NumStructural; ++J)
      R.Objective +=
          BaseCost[static_cast<size_t>(J)] * R.X[static_cast<size_t>(J)];
    R.Basis.Basic.resize(static_cast<size_t>(NumRows));
    for (int I = 0; I < NumRows; ++I)
      R.Basis.Basic[static_cast<size_t>(I)] =
          static_cast<int32_t>(Basis[static_cast<size_t>(I)]);
    R.Basis.AtUpper.assign(AtUpper.begin(), AtUpper.end());
    return R;
  }

  LPResult solveCold(int64_t Budget) {
    Pivots = 0;
    MaxPivots = Budget;
    prepareState();
    int Artificials = coldStart();

    if (Artificials > 0) {
      phase1Costs();
      if (!primalIterate())
        return finish(SolveStatus::Limit);
      if (std::fabs(currentObjective()) > 1e-6)
        return finish(SolveStatus::Infeasible);
      realCosts();
      // Any basic artificial sits at zero; recompute values under the
      // frozen bounds so the phase-2 start is exact.
      computeBeta();
    }

    if (!primalIterate())
      return finish(SolveStatus::Limit);
    return finish(SolveStatus::Optimal);
  }

  LPResult solveWarm(const SimplexBasis &Warm, int64_t Budget) {
    if (static_cast<int>(Warm.Basic.size()) != NumRows ||
        static_cast<int>(Warm.AtUpper.size()) != NumTotal)
      return solveCold(Budget);

    Pivots = 0;
    MaxPivots = Budget;
    prepareState();

    // Install the warm basis; artificials stay frozen at zero (a basic
    // artificial from the parent is fine — it is pinned to zero).
    std::vector<uint8_t> Seen(static_cast<size_t>(NumTotal), 0);
    for (int I = 0; I < NumRows; ++I) {
      int C = Warm.Basic[static_cast<size_t>(I)];
      if (C < 0 || C >= NumTotal || Seen[static_cast<size_t>(C)])
        return solveCold(Budget);
      Seen[static_cast<size_t>(C)] = 1;
      Basis[static_cast<size_t>(I)] = C;
      BasisPos[static_cast<size_t>(C)] = I;
    }
    for (int J = 0; J < NumTotal; ++J) {
      if (BasisPos[static_cast<size_t>(J)] >= 0)
        continue;
      bool Up = Warm.AtUpper[static_cast<size_t>(J)] != 0 &&
                std::isfinite(Hi[static_cast<size_t>(J)]) &&
                Lo[static_cast<size_t>(J)] != Hi[static_cast<size_t>(J)];
      AtUpper[static_cast<size_t>(J)] = static_cast<uint8_t>(Up);
      double V = Up ? Hi[static_cast<size_t>(J)] : Lo[static_cast<size_t>(J)];
      if (!std::isfinite(V))
        V = 0.0; // free nonbasic (does not occur in our models)
      XVal[static_cast<size_t>(J)] = V;
    }

    if (!refactor())
      return solveCold(Budget);

    // Primal-feasible already? Straight to the primal loop. Otherwise
    // repair with dual pivots first.
    bool PrimalFeasible = true;
    for (int I = 0; I < NumRows && PrimalFeasible; ++I) {
      int BV = Basis[static_cast<size_t>(I)];
      PrimalFeasible =
          Beta[static_cast<size_t>(I)] >= Lo[static_cast<size_t>(BV)] - 1e-7 &&
          Beta[static_cast<size_t>(I)] <= Hi[static_cast<size_t>(BV)] + 1e-7;
    }

    if (!PrimalFeasible) {
      switch (dualRepair()) {
      case DualOutcome::Feasible:
        break;
      case DualOutcome::Infeasible:
        return finish(SolveStatus::Infeasible);
      case DualOutcome::Limit:
        return finish(SolveStatus::Limit);
      case DualOutcome::Abandon: {
        int64_t Spent = Pivots;
        LPResult R = solveCold(Budget > Spent ? Budget - Spent : 0);
        R.Pivots += Spent;
        return R;
      }
      }
    }

    if (!primalIterate())
      return finish(SolveStatus::Limit);
    return finish(SolveStatus::Optimal);
  }
};

//===--- public surface -----------------------------------------------------//

SparseSimplex::SparseSimplex(const LPProblem &P)
    : I(std::make_unique<Impl>(P)) {}
SparseSimplex::~SparseSimplex() = default;
SparseSimplex::SparseSimplex(SparseSimplex &&) noexcept = default;
SparseSimplex &SparseSimplex::operator=(SparseSimplex &&) noexcept = default;

void SparseSimplex::setVarBounds(int Var, double Lo, double Hi) {
  assert(Var >= 0 && Var < I->NumStructural && "bounds on unknown variable");
  I->VarLo[static_cast<size_t>(Var)] = Lo;
  I->VarHi[static_cast<size_t>(Var)] = Hi;
}

// Every engine solve is one `lp.solves` with its pivots and wall time;
// warm-started re-solves additionally count `lp.warm_solves`.

LPResult SparseSimplex::solve(int64_t MaxPivots) {
  auto Start = std::chrono::steady_clock::now();
  LPResult R = I->solveCold(MaxPivots);
  if (Telemetry *T = currentTelemetry()) {
    T->addCounter("lp.solves");
    T->addCounter("lp.pivots", R.Pivots);
    T->addGauge("lp.lp_seconds",
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              Start)
                    .count());
  }
  return R;
}

LPResult SparseSimplex::solveWarm(const SimplexBasis &Warm,
                                  int64_t MaxPivots) {
  auto Start = std::chrono::steady_clock::now();
  LPResult R = I->solveWarm(Warm, MaxPivots);
  if (Telemetry *T = currentTelemetry()) {
    T->addCounter("lp.solves");
    T->addCounter("lp.warm_solves");
    T->addCounter("lp.pivots", R.Pivots);
    T->addGauge("lp.lp_seconds",
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              Start)
                    .count());
  }
  return R;
}

LPResult ucc::solveLP(const LPProblem &P, int64_t MaxPivots) {
  SparseSimplex S(P);
  return S.solve(MaxPivots);
}

bool ucc::isFeasible(const LPProblem &P, const std::vector<double> &X,
                     double Tol) {
  if (static_cast<int>(X.size()) != P.NumVars)
    return false;
  for (int J = 0; J < P.NumVars; ++J)
    if (X[static_cast<size_t>(J)] < P.Lower[static_cast<size_t>(J)] - Tol ||
        X[static_cast<size_t>(J)] > P.Upper[static_cast<size_t>(J)] + Tol)
      return false;
  for (const LPConstraint &C : P.Constraints) {
    double V = 0.0;
    for (const auto &[Var, Coef] : C.Terms)
      V += Coef * X[static_cast<size_t>(Var)];
    switch (C.S) {
    case LPConstraint::Sense::LE:
      if (V > C.RHS + Tol)
        return false;
      break;
    case LPConstraint::Sense::GE:
      if (V < C.RHS - Tol)
        return false;
      break;
    case LPConstraint::Sense::EQ:
      if (std::fabs(V - C.RHS) > Tol)
        return false;
      break;
    }
  }
  return true;
}

double ucc::objectiveValue(const LPProblem &P, const std::vector<double> &X) {
  double V = 0.0;
  for (int J = 0; J < P.NumVars; ++J)
    V += P.Obj[static_cast<size_t>(J)] * X[static_cast<size_t>(J)];
  return V;
}
