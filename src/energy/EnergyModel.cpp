//===- energy/EnergyModel.cpp -------------------------------------------------==//

#include "energy/EnergyModel.h"

#include "support/Format.h"

#include <limits>

using namespace ucc;

EnergyModel::EnergyModel(double BitToInstrRatio, Mica2Power Power)
    : Pwr(Power), EnergyPerCycle(Power.energyPerCycle()),
      EnergyPerBit(BitToInstrRatio * Power.energyPerCycle()) {}

double EnergyModel::breakEvenExecutions(double SavedInstrs,
                                        double ExtraCycles) const {
  if (ExtraCycles <= 0.0)
    return std::numeric_limits<double>::infinity();
  return SavedInstrs * instrTransmissionEnergy() /
         (ExtraCycles * EnergyPerCycle);
}

std::string EnergyModel::powerTable(const Mica2Power &P) {
  std::string Out;
  Out += "Mode          Current      Mode           Current\n";
  Out += format("CPU active    %5.1f mA    Radio Rx       %5.1f mA\n",
                P.CpuActiveA * 1e3, P.RadioRxA * 1e3);
  Out += format("CPU idle      %5.1f mA    Tx (+10dB)     %5.1f mA\n",
                P.CpuIdleA * 1e3, P.RadioTxA * 1e3);
  Out += format("CPU standby   %5.0f uA    EEPROM read    %5.1f mA\n",
                P.CpuStandbyA * 1e6, P.EepromReadA * 1e3);
  Out += format("LEDs          %5.1f mA    EEPROM write   %5.1f mA\n",
                P.LedsA * 1e3, P.EepromWriteA * 1e3);
  return Out;
}
