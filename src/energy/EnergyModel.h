//===- energy/EnergyModel.h - Mica2 power and update-energy model ---------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's energy model (sections 2.1 and 5.5). The Fig. 3 current
/// table for the Mica2 mote is reproduced verbatim; from it we derive the
/// per-cycle execution energy, and — following the paper's headline ratio —
/// set the per-bit transmission energy to 1000x the energy of one ALU
/// instruction. Equations (18)/(19):
///
///   Diff_energy   = Diff_inst * E_trans + Diff_cycle * E_exe * Cnt
///   EnergySavings = Diff_energy(GCC-RA) - Diff_energy(UCC-RA)
///
/// where Cnt is how many times the code runs before it retires. The model
/// also answers the compiler's planning question: how many executions make
/// one extra runtime instruction more expensive than transmitting one
/// instruction word (the 16,000-execution example of section 2.1 — here
/// 32,000, since SAVR instruction words are 32 bits)?
///
//===----------------------------------------------------------------------===//

#ifndef UCC_ENERGY_ENERGYMODEL_H
#define UCC_ENERGY_ENERGYMODEL_H

#include <cstdint>
#include <string>

namespace ucc {

/// Operating-mode currents of the Mica2 mote (paper Fig. 3), in amperes.
struct Mica2Power {
  double CpuActiveA = 8.0e-3;
  double CpuIdleA = 3.2e-3;
  double CpuStandbyA = 216e-6;
  double LedsA = 2.2e-3;
  double RadioRxA = 7.0e-3;
  double RadioTxA = 21.5e-3; ///< Tx at +10 dB
  double EepromReadA = 6.2e-3;
  double EepromWriteA = 18.4e-3;

  double SupplyVolts = 3.0;
  double CpuHz = 7.3728e6;
  double RadioBitsPerSec = 38400.0;

  /// Joules consumed per CPU cycle while active.
  double energyPerCycle() const {
    return CpuActiveA * SupplyVolts / CpuHz;
  }

  /// Joules per transmitted bit from first principles (Tx current only).
  double radioTxEnergyPerBit() const {
    return RadioTxA * SupplyVolts / RadioBitsPerSec;
  }

  /// Joules per received bit.
  double radioRxEnergyPerBit() const {
    return RadioRxA * SupplyVolts / RadioBitsPerSec;
  }
};

/// The update-energy model used by both the compiler (to decide whether an
/// extra mov pays for itself) and the evaluation harness.
class EnergyModel {
public:
  /// Builds the default model: E_exe = one CPU cycle; E_bit = Ratio x the
  /// energy of a 1-cycle ALU instruction (paper: sending one bit costs
  /// about as much as executing 1000 instructions).
  explicit EnergyModel(double BitToInstrRatio = 1000.0,
                       Mica2Power Power = Mica2Power());

  const Mica2Power &power() const { return Pwr; }

  /// Energy to execute \p Cycles CPU cycles.
  double executionEnergy(double Cycles) const {
    return Cycles * EnergyPerCycle;
  }

  /// Energy to disseminate \p Bits over one hop.
  double transmissionEnergy(double Bits) const {
    return Bits * EnergyPerBit;
  }

  /// Energy to disseminate one 32-bit instruction word (the paper's
  /// E_trans).
  double instrTransmissionEnergy() const { return transmissionEnergy(32.0); }

  /// Energy to execute one average instruction (the paper's E_exe).
  double instrExecutionEnergy(double CyclesPerInstr = 1.0) const {
    return executionEnergy(CyclesPerInstr);
  }

  /// Equation (18).
  double diffEnergy(double DiffInst, double DiffCycle, double Cnt) const {
    return DiffInst * instrTransmissionEnergy() +
           DiffCycle * EnergyPerCycle * Cnt;
  }

  /// Equation (19).
  double energySavings(double DiffInstBaseline, double DiffCycleBaseline,
                       double DiffInstUcc, double DiffCycleUcc,
                       double Cnt) const {
    return diffEnergy(DiffInstBaseline, DiffCycleBaseline, Cnt) -
           diffEnergy(DiffInstUcc, DiffCycleUcc, Cnt);
  }

  /// Executions after which \p ExtraCycles of runtime cost outweigh
  /// transmitting \p SavedInstrs instruction words (the compiler's
  /// break-even; section 2.1's 16,000-execution example).
  double breakEvenExecutions(double SavedInstrs, double ExtraCycles) const;

  /// Raw knobs (tests and ablations override them).
  double energyPerBit() const { return EnergyPerBit; }
  double energyPerCycle() const { return EnergyPerCycle; }
  void setEnergyPerBit(double J) { EnergyPerBit = J; }
  void setEnergyPerCycle(double J) { EnergyPerCycle = J; }

  /// Renders the Fig. 3 power table.
  static std::string powerTable(const Mica2Power &Power = Mica2Power());

private:
  Mica2Power Pwr;
  double EnergyPerCycle;
  double EnergyPerBit;
};

} // namespace ucc

#endif // UCC_ENERGY_ENERGYMODEL_H
