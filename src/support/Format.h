//===- support/Format.h - printf-style std::string formatting ------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small printf-style formatting helper producing std::string. The library
/// never writes to std::cout/cerr itself (per the coding standard); all
/// human-readable output is built as strings and printed by tools.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_FORMAT_H
#define UCC_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace ucc {

/// Formats \p Fmt with printf semantics into a std::string.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list flavor of format().
std::string formatv(const char *Fmt, va_list Args);

} // namespace ucc

#endif // UCC_SUPPORT_FORMAT_H
