//===- support/Interner.cpp - process-global string interning -------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Interner.h"

using namespace ucc;

StringInterner &StringInterner::global() {
  static StringInterner SI;
  return SI;
}

SymbolTable ucc::internNames(StringInterner &SI,
                             const std::vector<std::string> &Names) {
  SymbolTable Table;
  Table.reserve(Names.size());
  for (const std::string &N : Names)
    Table.push_back(SI.intern(N));
  return Table;
}
