//===- support/Json.cpp - minimal JSON document model ---------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser and the serializer. Numbers that hold exact
/// integers print as integers (no exponent), so counters survive a
/// parse/serialize round trip byte-identically.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Format.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

using namespace ucc;
using namespace ucc::json;

Value Value::boolean(bool V) {
  Value Out;
  Out.K = Bool;
  Out.B = V;
  return Out;
}

Value Value::number(double V) {
  Value Out;
  Out.K = Number;
  Out.Num = V;
  return Out;
}

Value Value::string(std::string V) {
  Value Out;
  Out.K = String;
  Out.Str = std::move(V);
  return Out;
}

Value Value::array() {
  Value Out;
  Out.K = Array;
  return Out;
}

Value Value::object() {
  Value Out;
  Out.K = Object;
  return Out;
}

const Value *Value::find(const std::string &Key) const {
  if (K != Object)
    return nullptr;
  for (const auto &[Name, Member] : Obj)
    if (Name == Key)
      return &Member;
  return nullptr;
}

Value *Value::find(const std::string &Key) {
  return const_cast<Value *>(
      static_cast<const Value *>(this)->find(Key));
}

Value &Value::set(const std::string &Key, Value V) {
  if (Value *Existing = find(Key)) {
    *Existing = std::move(V);
    return *Existing;
  }
  Obj.emplace_back(Key, std::move(V));
  return Obj.back().second;
}

double Value::numberOr(const std::string &Key, double Default) const {
  const Value *V = find(Key);
  return V && V->K == Number ? V->Num : Default;
}

std::string Value::stringOr(const std::string &Key,
                            const std::string &Default) const {
  const Value *V = find(Key);
  return V && V->K == String ? V->Str : Default;
}

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

namespace {

std::string numberToString(double V) {
  if (std::isfinite(V) && V == std::floor(V) && std::fabs(V) < 9.0e15)
    return format("%lld", static_cast<long long>(V));
  if (!std::isfinite(V))
    return "null"; // JSON has no inf/nan; degrade explicitly
  return format("%.17g", V);
}

void serializeInto(const Value &V, std::string &Out, int Indent,
                   int Depth) {
  auto newline = [&](int D) {
    if (Indent < 0)
      return;
    Out += "\n";
    Out.append(static_cast<size_t>(Indent * D), ' ');
  };
  switch (V.K) {
  case Value::Null:
    Out += "null";
    break;
  case Value::Bool:
    Out += V.B ? "true" : "false";
    break;
  case Value::Number:
    Out += numberToString(V.Num);
    break;
  case Value::String:
    Out += "\"" + escape(V.Str) + "\"";
    break;
  case Value::Array:
    Out += "[";
    for (size_t K = 0; K < V.Arr.size(); ++K) {
      if (K != 0)
        Out += ",";
      newline(Depth + 1);
      serializeInto(V.Arr[K], Out, Indent, Depth + 1);
    }
    if (!V.Arr.empty())
      newline(Depth);
    Out += "]";
    break;
  case Value::Object:
    Out += "{";
    for (size_t K = 0; K < V.Obj.size(); ++K) {
      if (K != 0)
        Out += ",";
      newline(Depth + 1);
      Out += "\"" + escape(V.Obj[K].first) + "\":";
      if (Indent >= 0)
        Out += " ";
      serializeInto(V.Obj[K].second, Out, Indent, Depth + 1);
    }
    if (!V.Obj.empty())
      newline(Depth);
    Out += "}";
    break;
  }
}

class Parser {
public:
  explicit Parser(const std::string &Text) : S(Text) {}

  std::optional<Value> parse() {
    auto V = value();
    skipWs();
    if (!V || Pos != S.size())
      return std::nullopt;
    return std::move(*V);
  }

private:
  void skipWs() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  std::optional<std::string> string() {
    skipWs();
    if (Pos >= S.size() || S[Pos] != '"')
      return std::nullopt;
    ++Pos;
    std::string Out;
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C == '\\' && Pos < S.size()) {
        char E = S[Pos++];
        switch (E) {
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 4 > S.size())
            return std::nullopt;
          Out += static_cast<char>(
              std::strtol(S.substr(Pos, 4).c_str(), nullptr, 16));
          Pos += 4;
          break;
        }
        default:
          Out += E;
        }
      } else {
        Out += C;
      }
    }
    if (Pos >= S.size())
      return std::nullopt;
    ++Pos; // closing quote
    return Out;
  }

  std::optional<Value> value() {
    skipWs();
    if (Pos >= S.size())
      return std::nullopt;
    char C = S[Pos];
    if (C == '{') {
      ++Pos;
      Value V = Value::object();
      skipWs();
      if (eat('}'))
        return V;
      do {
        auto Key = string();
        if (!Key || !eat(':'))
          return std::nullopt;
        auto Member = value();
        if (!Member)
          return std::nullopt;
        V.Obj.emplace_back(std::move(*Key), std::move(*Member));
      } while (eat(','));
      if (!eat('}'))
        return std::nullopt;
      return V;
    }
    if (C == '[') {
      ++Pos;
      Value V = Value::array();
      skipWs();
      if (eat(']'))
        return V;
      do {
        auto Elem = value();
        if (!Elem)
          return std::nullopt;
        V.Arr.push_back(std::move(*Elem));
      } while (eat(','));
      if (!eat(']'))
        return std::nullopt;
      return V;
    }
    if (C == '"') {
      auto Str = string();
      if (!Str)
        return std::nullopt;
      return Value::string(std::move(*Str));
    }
    if (S.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      return Value::boolean(true);
    }
    if (S.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      return Value::boolean(false);
    }
    if (S.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      return Value::null();
    }
    char *End = nullptr;
    double Num = std::strtod(S.c_str() + Pos, &End);
    if (End == S.c_str() + Pos)
      return std::nullopt;
    Pos = static_cast<size_t>(End - S.c_str());
    return Value::number(Num);
  }

  const std::string &S;
  size_t Pos = 0;
};

} // namespace

std::string Value::serialize(int Indent) const {
  std::string Out;
  serializeInto(*this, Out, Indent, 0);
  return Out;
}

std::optional<Value> json::parse(const std::string &Text) {
  return Parser(Text).parse();
}
