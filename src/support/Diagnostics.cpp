//===- support/Diagnostics.cpp --------------------------------------------==//

#include "support/Diagnostics.h"

#include "support/Format.h"

using namespace ucc;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      Out += format("%u:%u: %s: %s\n", D.Loc.Line, D.Loc.Col,
                    kindName(D.Kind), D.Message.c_str());
    else
      Out += format("%s: %s\n", kindName(D.Kind), D.Message.c_str());
  }
  return Out;
}
