//===- support/Log.h - minimal leveled diagnostics logger ----------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small stderr logger for the long-running paths
/// (serving loop, campaigns, flight recorder): leveled, printf-style,
/// timestamped relative to process start. Not a tracing system — traces
/// and metrics live in support/Telemetry and support/Metrics; this is
/// for the handful of operator-facing lines ("SLO breach, trace dumped
/// to ...") that must reach a terminal even when telemetry is off.
///
/// The threshold defaults to Warn, is overridable with `UCC_LOG`
/// (debug|info|warn|error|off) or programmatically, and filtered-out
/// calls cost one integer compare.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_LOG_H
#define UCC_SUPPORT_LOG_H

namespace ucc {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// The active threshold: an explicit setLogLevel() override if any, else
/// the `UCC_LOG` environment variable, else Warn.
LogLevel logLevel();

/// Installs \p Level as the process-wide threshold.
void setLogLevel(LogLevel Level);

/// True when a message at \p Level would be emitted.
bool logEnabled(LogLevel Level);

/// Emits one printf-formatted line to stderr as
/// `[<seconds-since-start>] <LEVEL> <message>` when \p Level passes the
/// threshold.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel Level, const char *Fmt, ...);

} // namespace ucc

#endif // UCC_SUPPORT_LOG_H
