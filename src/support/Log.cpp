//===- support/Log.cpp - minimal leveled diagnostics logger --------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ucc;

namespace {
// -1 = no override installed; otherwise a LogLevel value.
std::atomic<int> LevelOverride{-1};

LogLevel levelFromEnv() {
  const char *Env = std::getenv("UCC_LOG");
  if (!Env)
    return LogLevel::Warn;
  if (std::strcmp(Env, "debug") == 0)
    return LogLevel::Debug;
  if (std::strcmp(Env, "info") == 0)
    return LogLevel::Info;
  if (std::strcmp(Env, "warn") == 0)
    return LogLevel::Warn;
  if (std::strcmp(Env, "error") == 0)
    return LogLevel::Error;
  if (std::strcmp(Env, "off") == 0)
    return LogLevel::Off;
  return LogLevel::Warn;
}

double secondsSinceStart() {
  static const auto Start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

const char *levelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "DEBUG";
  case LogLevel::Info:
    return "INFO";
  case LogLevel::Warn:
    return "WARN";
  case LogLevel::Error:
    return "ERROR";
  case LogLevel::Off:
    return "OFF";
  }
  return "?";
}
} // namespace

LogLevel ucc::logLevel() {
  int Override = LevelOverride.load(std::memory_order_relaxed);
  if (Override >= 0)
    return static_cast<LogLevel>(Override);
  return levelFromEnv();
}

void ucc::setLogLevel(LogLevel Level) {
  LevelOverride.store(static_cast<int>(Level), std::memory_order_relaxed);
}

bool ucc::logEnabled(LogLevel Level) {
  return static_cast<int>(Level) >= static_cast<int>(logLevel());
}

void ucc::logf(LogLevel Level, const char *Fmt, ...) {
  if (!logEnabled(Level))
    return;
  char Msg[512];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Msg, sizeof(Msg), Fmt, Args);
  va_end(Args);
  std::fprintf(stderr, "[%10.3f] %-5s %s\n", secondsSinceStart(),
               levelName(Level), Msg);
}
