//===- support/ThreadPool.h - shared-queue parallel-for ------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation pipeline's parallelism substrate: a fork-join
/// shared-queue pool (`ThreadPool`) plus the telemetry-aware
/// `parallelFor` free function that the compiler and the benches call.
///
/// The unit of work is an *index*: `parallelFor(N, Jobs, Fn)` runs
/// `Fn(0) .. Fn(N-1)` exactly once each, on up to `Jobs` threads pulling
/// indices from one shared atomic queue (the caller's thread
/// participates, so `Jobs == 1` degenerates to the plain serial loop).
/// Work items must be independent: per-function UCC-RA problems,
/// per-config bench sweep points.
///
/// Telemetry: the ambient registry (support/Telemetry) is thread-local,
/// so a worker must not record into the caller's registry. `parallelFor`
/// therefore gives every *item* its own private registry (mirroring the
/// caller's event-enablement), runs the item under it, and after the join
/// merges the per-item registries into the caller's registry in item
/// order via `Telemetry::mergeChild`. Counters, gauges and span
/// aggregates are consequently independent of scheduling — a run with
/// `--jobs 8` reports the same totals as `--jobs 1` — and merged events
/// are re-sorted by timestamp so traces stay chronological.
///
/// Job-count resolution (`ThreadPool::defaultJobs`): an explicit
/// `setDefaultJobs` (the `--jobs N` flag) wins, else the `UCC_JOBS`
/// environment variable, else `std::thread::hardware_concurrency`.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_THREADPOOL_H
#define UCC_SUPPORT_THREADPOOL_H

#include <functional>

namespace ucc {

/// Fork-join pool over one shared index queue. Construction is cheap
/// (threads are spawned per parallelFor call and joined before it
/// returns), so the pool is a value you create where you need it.
class ThreadPool {
public:
  /// \p Jobs worker threads; 0 means defaultJobs().
  explicit ThreadPool(int Jobs = 0);

  int jobs() const { return NumJobs; }

  /// Runs \p Fn(0..N-1) exactly once each across the workers (this
  /// thread included). Blocks until every item finished. An exception
  /// thrown by an item stops the queue and is rethrown here. No
  /// telemetry handling — see the free parallelFor for that.
  void parallelFor(int N, const std::function<void(int)> &Fn);

  /// std::thread::hardware_concurrency, clamped to at least 1.
  static int hardwareJobs();

  /// The calling thread's worker index within the innermost active
  /// parallelFor: 0 for the caller's own thread (and any thread outside a
  /// parallel region), 1..Workers-1 for spawned workers. parallelFor uses
  /// it to place per-item telemetry on per-worker trace tracks.
  static int currentWorker();

  /// The session default: setDefaultJobs() override if any, else the
  /// UCC_JOBS environment variable, else hardwareJobs().
  static int defaultJobs();

  /// Installs \p Jobs as the process-wide default (0 clears the
  /// override). The `--jobs N` flag of `uccc` and the bench harness
  /// lands here.
  static void setDefaultJobs(int Jobs);

private:
  int NumJobs;
};

/// Telemetry-aware parallel loop: runs \p Fn(0..N-1) on up to \p Jobs
/// threads (0 = ThreadPool::defaultJobs()), giving each item a private
/// telemetry registry and merging them into the caller's registry in
/// item order after the join (see the file comment). With one job, one
/// item, or no ambient registry this reduces to the obvious serial or
/// raw-parallel loop.
///
/// Tracing: when the caller's registry records events, each item's
/// registry lands on its worker's trace track ("worker N" in the Chrome
/// export) wrapped in a `task` slice, and the fan-out edge is drawn as a
/// flow arrow (FlowStart on the caller's track before the fork, FlowEnd
/// on the worker's task slice). A thread-current TraceContext is
/// propagated to every item (SpanId = the item's flow id), so spans the
/// items open carry the originating request's trace id. All of this is
/// event-layer only: counters, gauges and span aggregates stay identical
/// to the serial run.
void parallelFor(int N, int Jobs, const std::function<void(int)> &Fn);

} // namespace ucc

#endif // UCC_SUPPORT_THREADPOOL_H
