//===- support/Telemetry.h - unified compilation telemetry ----------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement substrate of the library: one registry of named
/// counters, gauges, hierarchical timed spans and (opt-in) structured
/// trace events that every subsystem reports into, replacing the
/// scattered ad-hoc statistics structs as the single export path. The
/// paper's whole argument is quantitative (edit script bytes vs. ILP
/// solve cost vs. energy, Figs. 9-16), so every phase of the pipeline can
/// account for itself here and one JSON document captures a full
/// sink-to-sensor flow.
///
/// Two granularities, two exports:
///  - the *aggregate* view (counters/gauges/spans, `toJson()`) answers
///    "what did this run cost in total";
///  - the *event* view (`enableEvents()` + `toChromeTrace()`) answers
///    "what happened when, on which node" — per-node packet events and
///    energy timelines from the network/simulator, loadable in Perfetto.
/// Events live in a bounded ring buffer and cost nothing unless a
/// consumer enabled them.
///
/// The registry is *ambient*: instrumentation sites call the free helpers
/// (`telemetryCount`, `telemetryGauge`, `ScopedSpan`) which resolve the
/// thread-current registry installed by a `TelemetryScope`. When no scope
/// is active — the default — every helper reduces to a single branch on a
/// thread-local pointer and touches nothing else; this is the zero-overhead
/// no-op mode, so the library can stay instrumented unconditionally.
///
/// Naming conventions (the full schema is documented in
/// docs/OBSERVABILITY.md):
///  - counters/gauges use dotted lowercase paths: `lp.pivots`,
///    `ra.pref_honored`, `diff.bytes.insert`;
///  - spans use bare phase names (`parse`, `opt`, `isel`, `ra`, `da`,
///    `diff`, `sim`) and nest by runtime call structure; re-entering a
///    name under the same parent accumulates into one node.
///
/// Typical use:
/// \code
///   Telemetry T;
///   {
///     TelemetryScope Scope(T);
///     auto Out = Compiler::compile(Source, Opts, Diag);   // instrumented
///   }
///   writeFile("trace.json", T.toJson());
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_TELEMETRY_H
#define UCC_SUPPORT_TELEMETRY_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ucc {

/// A log-bucketed duration distribution with bounded memory. Values map
/// to log-linear buckets (16 linear sub-buckets per power-of-two octave,
/// so a bucket's representative value is within ~3% of anything that
/// landed in it) stored sparsely: a span that only ever sees a handful of
/// distinct magnitudes holds a handful of (bucket, count) pairs, and even
/// a pathological input saturates at NumBuckets entries — multi-minute
/// serving runs cannot grow it without limit. Merging two distributions
/// is a join on bucket indices, so parallel per-item telemetry folds
/// losslessly.
struct DurationDist {
  /// (bucket index, entry count), sorted ascending by bucket index.
  std::vector<std::pair<uint16_t, uint32_t>> Buckets;
  uint64_t Count = 0; ///< total recorded entries

  static constexpr int SubBuckets = 16; ///< linear steps per octave
  static constexpr int MinExp = -64;    ///< ~5e-20 s floor
  static constexpr int MaxExp = 63;     ///< ~9e18 s ceiling
  /// Bucket 0 catches non-positive values; the rest cover the exponent
  /// range at SubBuckets per octave.
  static constexpr int NumBuckets = 1 + (MaxExp - MinExp + 1) * SubBuckets;

  /// The bucket \p Seconds falls into.
  static uint16_t bucketFor(double Seconds);
  /// The representative (midpoint) value of \p Bucket.
  static double valueFor(uint16_t Bucket);

  void record(double Seconds);
  void merge(const DurationDist &Other);
  /// Quantile \p Q in [0,1] as the representative value of the bucket the
  /// Q-th entry falls into (0 when empty).
  double quantileSeconds(double Q) const;
};

/// One node of the span tree: an accumulated wall-clock phase. Entering
/// the same name again under the same parent adds to Seconds/Count rather
/// than growing the tree, so per-function loops aggregate naturally.
///
/// Beyond the running total, every entry's individual duration feeds a
/// distribution: exact min/max plus a bounded log-bucket histogram
/// (DurationDist) from which p50/p95 are estimated. Repeated phases —
/// per-function RA, per-round dissemination — therefore report how their
/// cost is distributed, not just how it sums, at fixed memory per node.
struct TelemetrySpan {
  std::string Name;
  double Seconds = 0.0; ///< total wall time across all entries
  int64_t Count = 0;    ///< times the span was entered
  std::vector<std::unique_ptr<TelemetrySpan>> Children;

  double MinSeconds = 0.0; ///< fastest single entry (exact)
  double MaxSeconds = 0.0; ///< slowest single entry (exact)
  /// Per-entry durations, log-bucketed (bounded memory).
  DurationDist Dist;

  /// Duration quantile \p Q in [0,1] estimated from the bucket histogram,
  /// clamped to the exact [MinSeconds, MaxSeconds] envelope (0 when the
  /// span never closed).
  double quantileSeconds(double Q) const;

  /// Child with \p Name, or null.
  const TelemetrySpan *find(const std::string &ChildName) const;
};

/// A request-scoped trace identity: every span/event recorded while a
/// context is installed is attributable to one logical request (a
/// PlanService::plan call, one campaign cohort), even when the work fans
/// out across worker threads. SpanId names the fan-out edge that carried
/// the context to this thread (the flow id in the Chrome trace export).
struct TraceContext {
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
};

/// The thread-current trace context, or null when none is installed.
const TraceContext *currentTraceContext();

/// Mints a process-unique trace id (never 0).
uint64_t nextTraceId();

/// RAII installer for a TraceContext (thread-local; scopes nest).
class TraceContextScope {
public:
  explicit TraceContextScope(TraceContext Ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope &) = delete;
  TraceContextScope &operator=(const TraceContextScope &) = delete;

private:
  TraceContext Ctx;
  const TraceContext *Prev;
};

/// One entry of the bounded event trace: a timestamped point (or
/// begin/end/counter-sample) on a per-node track. Phase mirrors the
/// Chrome trace-event `ph` field so the export is a direct mapping.
struct TelemetryEvent {
  enum class Phase : uint8_t {
    Instant,   ///< a point in time (`ph:"i"`)
    Begin,     ///< opens a duration (`ph:"B"`)
    End,       ///< closes the innermost open duration (`ph:"E"`)
    Counter,   ///< a sampled value on a counter track (`ph:"C"`)
    FlowStart, ///< opens a flow arrow (`ph:"s"`), paired by FlowId
    FlowEnd    ///< closes a flow arrow (`ph:"f"`, binds to the enclosing
               ///< slice), paired by FlowId
  };
  Phase Ph = Phase::Instant;
  double TsMicros = 0.0; ///< microseconds since the registry's trace epoch
  int32_t Track = 0;     ///< Chrome `tid`: 0 = the pipeline, N = node N
  uint64_t FlowId = 0;   ///< pairs FlowStart/FlowEnd across tracks
  std::string Category;  ///< subsystem prefix (`net`, `sim`, `span`, ...)
  std::string Name;
  /// Numeric payload, rendered as the Chrome `args` object.
  std::vector<std::pair<std::string, double>> Args;
};

/// The registry. Not thread-safe by design: the compilation pipeline is
/// single-threaded and each thread installs its own scope.
class Telemetry {
public:
  Telemetry();

  /// Adds \p Delta to counter \p Name (creating it at zero).
  void addCounter(const std::string &Name, int64_t Delta = 1);

  /// Sets gauge \p Name to \p Value (last write wins).
  void setGauge(const std::string &Name, double Value);

  /// Adds \p Delta to gauge \p Name (for accumulated quantities like
  /// solve seconds).
  void addGauge(const std::string &Name, double Delta);

  /// Creates counter \p Name at zero if absent. Lets a driver pin the
  /// documented schema keys into the output even when the code path that
  /// would bump them never runs (e.g. `lp.*` under the greedy strategy).
  void declareCounter(const std::string &Name);

  /// Declares the whole documented counter schema at zero (see
  /// docs/OBSERVABILITY.md). Drivers that promise the stable schema —
  /// `uccc --trace-json`, the bench harness — call this once after
  /// installing the registry.
  void declareStandardCounters();

  /// Opens a child span of the currently open span (top level when none).
  void beginSpan(const std::string &Name);

  /// Closes the innermost open span, folding its wall time into the tree.
  void endSpan();

  /// \name Event trace
  /// The structured event layer (docs/OBSERVABILITY.md): a ring buffer of
  /// timestamped events that subsystems append to only when a consumer
  /// asked for them. Disabled by default so the counter/span-only paths
  /// pay nothing; when enabled, beginSpan/endSpan additionally record
  /// Begin/End events so phase durations appear on the trace timeline.
  /// @{

  /// Turns event recording on with a ring buffer of \p Capacity events.
  /// Once the buffer is full the oldest events are overwritten and
  /// eventsDropped() counts the loss.
  void enableEvents(size_t Capacity = DefaultEventCapacity);

  /// True when events are being recorded.
  bool eventsEnabled() const { return EventsOn; }

  /// Appends one event (no-op unless eventsEnabled()); the timestamp is
  /// taken here, so events are monotone in buffer order. \p FlowId is
  /// meaningful only for FlowStart/FlowEnd phases.
  void recordEvent(TelemetryEvent::Phase Ph, const std::string &Category,
                   const std::string &Name, int32_t Track = 0,
                   std::vector<std::pair<std::string, double>> Args = {},
                   uint64_t FlowId = 0);

  /// The track span Begin/End events (and other default-track emission)
  /// land on. 0 — the pipeline — by default; parallelFor points each
  /// worker's per-item registry at its worker track so a multi-threaded
  /// trace shows per-thread timelines.
  void setDefaultTrack(int32_t Track) { DefaultTrack = Track; }
  int32_t defaultTrack() const { return DefaultTrack; }

  /// Tracks at and above this value render as "worker N" rows in the
  /// Chrome trace export (N = Track - WorkerTrackBase); below it they are
  /// the pipeline (0) and per-node tracks.
  static constexpr int32_t WorkerTrackBase = 1 << 20;

  /// The retained events, oldest first.
  std::vector<const TelemetryEvent *> eventsInOrder() const;

  /// Events lost to ring-buffer wraparound.
  uint64_t eventsDropped() const { return EventsDropped; }

  /// Serializes the retained events as a Chrome trace-event JSON document
  /// (the "JSON object format": {"traceEvents":[...],...}), loadable in
  /// Perfetto / chrome://tracing. Includes thread-name metadata so tracks
  /// read as "node N".
  std::string toChromeTrace() const;

  static constexpr size_t DefaultEventCapacity = 1 << 16;
  /// @}

  int64_t counter(const std::string &Name) const;
  double gauge(const std::string &Name) const;
  const std::map<std::string, int64_t> &counters() const { return Counters; }
  const std::map<std::string, double> &gauges() const { return Gauges; }

  /// Root of the span forest (Name empty, Seconds unused).
  const TelemetrySpan &spans() const { return Root; }

  /// Serializes the whole registry as one JSON document:
  /// {"version":1,"counters":{...},"gauges":{...},"spans":[...]}.
  std::string toJson() const;

  /// Folds \p Child into this registry (the parallel-merge primitive used
  /// by support/ThreadPool): counters and gauges accumulate, the child's
  /// span forest is grafted under the innermost open span of this
  /// registry (top level when none), and — when both registries record
  /// events — the child's events are appended with timestamps re-based
  /// onto this registry's trace epoch, then the whole buffer is re-sorted
  /// by timestamp so the merged trace reads chronologically. Merging is
  /// commutative over counters/gauges and, because span trees fold by
  /// name, the aggregate view is independent of which worker ran which
  /// item; callers that need full determinism merge per-item registries
  /// in item order. \p Child must have no open spans.
  void mergeChild(const Telemetry &Child);

  /// Drops every counter, gauge, span (open spans included) and event,
  /// returning the registry to its just-constructed state (event
  /// recording off, trace epoch reset).
  void clear();

private:
  double microsSinceEpoch() const;

  std::map<std::string, int64_t> Counters;
  std::map<std::string, double> Gauges;
  TelemetrySpan Root;
  /// Innermost-last stack of open spans with their entry timestamps.
  std::vector<std::pair<TelemetrySpan *, std::chrono::steady_clock::time_point>>
      Open;

  /// Event ring buffer: Events grows to EventCapacity, then EventHead
  /// marks the oldest slot and new events overwrite in rotation.
  std::vector<TelemetryEvent> Events;
  size_t EventCapacity = 0;
  size_t EventHead = 0;
  uint64_t EventsDropped = 0;
  bool EventsOn = false;
  int32_t DefaultTrack = 0;
  std::chrono::steady_clock::time_point TraceEpoch;
};

/// The thread-current registry, or null when telemetry is off.
Telemetry *currentTelemetry();

/// RAII installer: makes \p T the thread-current registry for its lifetime
/// and restores the previous one (scopes nest).
class TelemetryScope {
public:
  explicit TelemetryScope(Telemetry &T);
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope &) = delete;
  TelemetryScope &operator=(const TelemetryScope &) = delete;

private:
  Telemetry *Prev;
};

/// Bumps \p Name on the current registry; no-op without one.
inline void telemetryCount(const std::string &Name, int64_t Delta = 1) {
  if (Telemetry *T = currentTelemetry())
    T->addCounter(Name, Delta);
}

/// Sets gauge \p Name on the current registry; no-op without one.
inline void telemetryGauge(const std::string &Name, double Value) {
  if (Telemetry *T = currentTelemetry())
    T->setGauge(Name, Value);
}

/// Accumulates into gauge \p Name on the current registry; no-op without
/// one.
inline void telemetryGaugeAdd(const std::string &Name, double Delta) {
  if (Telemetry *T = currentTelemetry())
    T->addGauge(Name, Delta);
}

/// Opens a span on the current registry; no-op without one. Pair with
/// telemetryEndSpan() when RAII scoping is inconvenient (the section does
/// not coincide with a block); both sides resolve the registry at call
/// time, so an unbalanced pair can only arise from mismatched call sites.
inline void telemetryBeginSpan(const char *Name) {
  if (Telemetry *T = currentTelemetry())
    T->beginSpan(Name);
}

/// Closes the innermost open span; no-op without a registry.
inline void telemetryEndSpan() {
  if (Telemetry *T = currentTelemetry())
    T->endSpan();
}

/// The registry to record events into, or null when nobody is listening.
/// Emission sites with non-trivial argument lists hoist this check so
/// that, with no scope installed, the whole site stays the single
/// pointer-load-and-branch no-op:
/// \code
///   if (Telemetry *T = eventTelemetry())
///     T->recordEvent(TelemetryEvent::Phase::Instant, "net", "packet.tx",
///                    Node, {{"round", Round}});
/// \endcode
inline Telemetry *eventTelemetry() {
  Telemetry *T = currentTelemetry();
  return T && T->eventsEnabled() ? T : nullptr;
}

/// Records an argument-free instant event; no-op without an event-enabled
/// registry.
inline void telemetryInstant(const char *Category, const char *Name,
                             int32_t Track = 0) {
  if (Telemetry *T = eventTelemetry())
    T->recordEvent(TelemetryEvent::Phase::Instant, Category, Name, Track);
}

/// RAII timed span on the current registry. Constructed with no registry
/// installed it does nothing at all (one pointer load + branch).
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name) : T(currentTelemetry()) {
    if (T)
      T->beginSpan(Name);
  }
  ~ScopedSpan() {
    if (T)
      T->endSpan();
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  Telemetry *T;
};

} // namespace ucc

#endif // UCC_SUPPORT_TELEMETRY_H
