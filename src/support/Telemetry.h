//===- support/Telemetry.h - unified compilation telemetry ----------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement substrate of the library: one registry of named
/// counters, gauges and hierarchical timed spans that every subsystem
/// reports into, replacing the scattered ad-hoc statistics structs as the
/// single export path. The paper's whole argument is quantitative (edit
/// script bytes vs. ILP solve cost vs. energy, Figs. 9-16), so every phase
/// of the pipeline can account for itself here and one JSON document
/// captures a full sink-to-sensor flow.
///
/// The registry is *ambient*: instrumentation sites call the free helpers
/// (`telemetryCount`, `telemetryGauge`, `ScopedSpan`) which resolve the
/// thread-current registry installed by a `TelemetryScope`. When no scope
/// is active — the default — every helper reduces to a single branch on a
/// thread-local pointer and touches nothing else; this is the zero-overhead
/// no-op mode, so the library can stay instrumented unconditionally.
///
/// Naming conventions (the full schema is documented in
/// docs/OBSERVABILITY.md):
///  - counters/gauges use dotted lowercase paths: `lp.pivots`,
///    `ra.pref_honored`, `diff.bytes.insert`;
///  - spans use bare phase names (`parse`, `opt`, `isel`, `ra`, `da`,
///    `diff`, `sim`) and nest by runtime call structure; re-entering a
///    name under the same parent accumulates into one node.
///
/// Typical use:
/// \code
///   Telemetry T;
///   {
///     TelemetryScope Scope(T);
///     auto Out = Compiler::compile(Source, Opts, Diag);   // instrumented
///   }
///   writeFile("trace.json", T.toJson());
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_TELEMETRY_H
#define UCC_SUPPORT_TELEMETRY_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ucc {

/// One node of the span tree: an accumulated wall-clock phase. Entering
/// the same name again under the same parent adds to Seconds/Count rather
/// than growing the tree, so per-function loops aggregate naturally.
struct TelemetrySpan {
  std::string Name;
  double Seconds = 0.0; ///< total wall time across all entries
  int64_t Count = 0;    ///< times the span was entered
  std::vector<std::unique_ptr<TelemetrySpan>> Children;

  /// Child with \p Name, or null.
  const TelemetrySpan *find(const std::string &ChildName) const;
};

/// The registry. Not thread-safe by design: the compilation pipeline is
/// single-threaded and each thread installs its own scope.
class Telemetry {
public:
  Telemetry();

  /// Adds \p Delta to counter \p Name (creating it at zero).
  void addCounter(const std::string &Name, int64_t Delta = 1);

  /// Sets gauge \p Name to \p Value (last write wins).
  void setGauge(const std::string &Name, double Value);

  /// Adds \p Delta to gauge \p Name (for accumulated quantities like
  /// solve seconds).
  void addGauge(const std::string &Name, double Delta);

  /// Creates counter \p Name at zero if absent. Lets a driver pin the
  /// documented schema keys into the output even when the code path that
  /// would bump them never runs (e.g. `lp.*` under the greedy strategy).
  void declareCounter(const std::string &Name);

  /// Declares the whole documented counter schema at zero (see
  /// docs/OBSERVABILITY.md). Drivers that promise the stable schema —
  /// `uccc --trace-json`, the bench harness — call this once after
  /// installing the registry.
  void declareStandardCounters();

  /// Opens a child span of the currently open span (top level when none).
  void beginSpan(const std::string &Name);

  /// Closes the innermost open span, folding its wall time into the tree.
  void endSpan();

  int64_t counter(const std::string &Name) const;
  double gauge(const std::string &Name) const;
  const std::map<std::string, int64_t> &counters() const { return Counters; }
  const std::map<std::string, double> &gauges() const { return Gauges; }

  /// Root of the span forest (Name empty, Seconds unused).
  const TelemetrySpan &spans() const { return Root; }

  /// Serializes the whole registry as one JSON document:
  /// {"version":1,"counters":{...},"gauges":{...},"spans":[...]}.
  std::string toJson() const;

  /// Drops every counter, gauge and span (open spans included).
  void clear();

private:
  std::map<std::string, int64_t> Counters;
  std::map<std::string, double> Gauges;
  TelemetrySpan Root;
  /// Innermost-last stack of open spans with their entry timestamps.
  std::vector<std::pair<TelemetrySpan *, std::chrono::steady_clock::time_point>>
      Open;
};

/// The thread-current registry, or null when telemetry is off.
Telemetry *currentTelemetry();

/// RAII installer: makes \p T the thread-current registry for its lifetime
/// and restores the previous one (scopes nest).
class TelemetryScope {
public:
  explicit TelemetryScope(Telemetry &T);
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope &) = delete;
  TelemetryScope &operator=(const TelemetryScope &) = delete;

private:
  Telemetry *Prev;
};

/// Bumps \p Name on the current registry; no-op without one.
inline void telemetryCount(const std::string &Name, int64_t Delta = 1) {
  if (Telemetry *T = currentTelemetry())
    T->addCounter(Name, Delta);
}

/// Sets gauge \p Name on the current registry; no-op without one.
inline void telemetryGauge(const std::string &Name, double Value) {
  if (Telemetry *T = currentTelemetry())
    T->setGauge(Name, Value);
}

/// Accumulates into gauge \p Name on the current registry; no-op without
/// one.
inline void telemetryGaugeAdd(const std::string &Name, double Delta) {
  if (Telemetry *T = currentTelemetry())
    T->addGauge(Name, Delta);
}

/// Opens a span on the current registry; no-op without one. Pair with
/// telemetryEndSpan() when RAII scoping is inconvenient (the section does
/// not coincide with a block); both sides resolve the registry at call
/// time, so an unbalanced pair can only arise from mismatched call sites.
inline void telemetryBeginSpan(const char *Name) {
  if (Telemetry *T = currentTelemetry())
    T->beginSpan(Name);
}

/// Closes the innermost open span; no-op without a registry.
inline void telemetryEndSpan() {
  if (Telemetry *T = currentTelemetry())
    T->endSpan();
}

/// RAII timed span on the current registry. Constructed with no registry
/// installed it does nothing at all (one pointer load + branch).
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name) : T(currentTelemetry()) {
    if (T)
      T->beginSpan(Name);
  }
  ~ScopedSpan() {
    if (T)
      T->endSpan();
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  Telemetry *T;
};

} // namespace ucc

#endif // UCC_SUPPORT_TELEMETRY_H
