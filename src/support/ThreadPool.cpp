//===- support/ThreadPool.cpp - shared-queue parallel-for -----------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fork-join implementation. The "queue" is an atomic next-index counter:
/// each worker claims indices until the range is exhausted, which is
/// contention-free for the coarse-grained items we run (whole UCC-RA
/// problems, whole bench sweep points). The first exception thrown by an
/// item is captured, the queue is drained, and the exception is rethrown
/// on the calling thread after the join.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Telemetry.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

using namespace ucc;

namespace {
std::atomic<int> DefaultJobsOverride{0};

// Flow-event ids must be unique across every parallelFor in the process:
// a trace file can contain many fan-outs and Perfetto pairs s/f records
// by id alone.
std::atomic<uint64_t> FlowIdCounter{1};

thread_local int CurrentWorkerId = 0;
} // namespace

int ThreadPool::currentWorker() { return CurrentWorkerId; }

ThreadPool::ThreadPool(int Jobs) : NumJobs(Jobs > 0 ? Jobs : defaultJobs()) {}

int ThreadPool::hardwareJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : static_cast<int>(N);
}

int ThreadPool::defaultJobs() {
  int Override = DefaultJobsOverride.load(std::memory_order_relaxed);
  if (Override > 0)
    return Override;
  if (const char *Env = std::getenv("UCC_JOBS")) {
    int V = std::atoi(Env);
    if (V > 0)
      return V;
  }
  return hardwareJobs();
}

void ThreadPool::setDefaultJobs(int Jobs) {
  DefaultJobsOverride.store(Jobs > 0 ? Jobs : 0, std::memory_order_relaxed);
}

void ThreadPool::parallelFor(int N, const std::function<void(int)> &Fn) {
  if (N <= 0)
    return;
  int Workers = NumJobs < N ? NumJobs : N;
  if (Workers <= 1) {
    for (int I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  std::atomic<int> Next{0};
  std::atomic<bool> Aborted{false};
  std::exception_ptr FirstError;
  std::mutex ErrorLock;

  auto Work = [&] {
    while (!Aborted.load(std::memory_order_relaxed)) {
      int I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return;
      try {
        Fn(I);
      } catch (...) {
        {
          std::lock_guard<std::mutex> Guard(ErrorLock);
          if (!FirstError)
            FirstError = std::current_exception();
        }
        Aborted.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(Workers - 1));
  for (int W = 1; W < Workers; ++W)
    Threads.emplace_back([&Work, W] {
      CurrentWorkerId = W;
      Work();
    });
  Work();
  for (std::thread &T : Threads)
    T.join();
  if (FirstError)
    std::rethrow_exception(FirstError);
}

void ucc::parallelFor(int N, int Jobs, const std::function<void(int)> &Fn) {
  if (N <= 0)
    return;
  ThreadPool Pool(Jobs);
  Telemetry *Parent = currentTelemetry();

  // Serial path: run directly under the caller's registry. The merged
  // parallel path below accumulates into the same names, so both paths
  // report identical totals.
  if (Pool.jobs() <= 1 || N == 1) {
    for (int I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  if (!Parent) {
    Pool.parallelFor(N, Fn);
    return;
  }

  // Per-item registries: stronger than per-worker — the merge result
  // cannot depend on which worker ran which item.
  std::vector<Telemetry> Items(static_cast<size_t>(N));
  bool Events = Parent->eventsEnabled();

  // The caller's trace context (if any) is propagated to every item so
  // spans the items open carry the originating request's trace id; the
  // item's flow id doubles as its span id.
  TraceContext ParentCtx;
  bool HasCtx = false;
  if (const TraceContext *Ctx = currentTraceContext()) {
    ParentCtx = *Ctx;
    HasCtx = true;
  }

  // Fan-out arrows: one FlowStart per item on the caller's track before
  // the fork, closed by a FlowEnd inside the item's `task` slice on its
  // worker track. Events only — counters/gauges/spans must stay
  // identical to the serial run.
  uint64_t FlowBase = 0;
  if (Events) {
    FlowBase = FlowIdCounter.fetch_add(static_cast<uint64_t>(N),
                                       std::memory_order_relaxed);
    for (int I = 0; I < N; ++I)
      Parent->recordEvent(TelemetryEvent::Phase::FlowStart, "flow", "task",
                          Parent->defaultTrack(), {}, FlowBase + I);
  }

  Pool.parallelFor(N, [&](int I) {
    Telemetry &T = Items[static_cast<size_t>(I)];
    int32_t Track =
        Telemetry::WorkerTrackBase + ThreadPool::currentWorker();
    if (Events) {
      T.enableEvents();
      T.setDefaultTrack(Track);
      T.recordEvent(TelemetryEvent::Phase::Begin, "task", "task", Track,
                    {{"item", static_cast<double>(I)}});
      T.recordEvent(TelemetryEvent::Phase::FlowEnd, "flow", "task", Track, {},
                    FlowBase + I);
    }
    TelemetryScope Scope(T);
    std::optional<TraceContextScope> Trace;
    if (HasCtx)
      Trace.emplace(TraceContext{ParentCtx.TraceId, FlowBase + I});
    // Close the task slice even when Fn throws, so the registries of
    // items that did complete merge into a well-nested trace.
    struct EndTask {
      Telemetry *T;
      int32_t Track;
      ~EndTask() {
        if (T)
          T->recordEvent(TelemetryEvent::Phase::End, "task", "task", Track);
      }
    } End{Events ? &T : nullptr, Track};
    Fn(I);
  });
  for (int I = 0; I < N; ++I)
    Parent->mergeChild(Items[static_cast<size_t>(I)]);
}
