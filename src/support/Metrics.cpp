//===- support/Metrics.cpp - time-series metrics over Telemetry ----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

using namespace ucc;

//===----------------------------------------------------------------------===//
// LatencyHistogram
//===----------------------------------------------------------------------===//

static uint64_t toNanos(double Seconds) {
  if (!(Seconds > 0.0))
    return 0;
  double N = Seconds * 1e9;
  if (N >= 1.8e19)
    return UINT64_MAX - 1;
  return static_cast<uint64_t>(N);
}

LatencyHistogram::LatencyHistogram() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::record(double Seconds) {
  uint16_t B = DurationDist::bucketFor(Seconds);
  Buckets[B].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  uint64_t Nanos = toNanos(Seconds);
  SumNanos.fetch_add(Nanos, std::memory_order_relaxed);
  uint64_t Prev = MinNanos.load(std::memory_order_relaxed);
  while (Nanos < Prev &&
         !MinNanos.compare_exchange_weak(Prev, Nanos,
                                         std::memory_order_relaxed))
    ;
  Prev = MaxNanos.load(std::memory_order_relaxed);
  while (Nanos > Prev &&
         !MaxNanos.compare_exchange_weak(Prev, Nanos,
                                         std::memory_order_relaxed))
    ;
}

uint64_t LatencyHistogram::count() const {
  return Count.load(std::memory_order_relaxed);
}

double LatencyHistogram::minSeconds() const {
  uint64_t N = MinNanos.load(std::memory_order_relaxed);
  return N == UINT64_MAX ? 0.0 : static_cast<double>(N) * 1e-9;
}

double LatencyHistogram::maxSeconds() const {
  return static_cast<double>(MaxNanos.load(std::memory_order_relaxed)) * 1e-9;
}

double LatencyHistogram::meanSeconds() const {
  uint64_t C = Count.load(std::memory_order_relaxed);
  if (C == 0)
    return 0.0;
  return static_cast<double>(SumNanos.load(std::memory_order_relaxed)) * 1e-9 /
         static_cast<double>(C);
}

double LatencyHistogram::quantileSeconds(double Q) const {
  uint64_t C = Count.load(std::memory_order_relaxed);
  if (C == 0)
    return 0.0;
  double Clamped = std::min(std::max(Q, 0.0), 1.0);
  uint64_t Rank =
      static_cast<uint64_t>(Clamped * static_cast<double>(C - 1) + 0.5);
  uint64_t Seen = 0;
  double V = 0.0;
  for (int B = 0; B < DurationDist::NumBuckets; ++B) {
    uint32_t N = Buckets[B].load(std::memory_order_relaxed);
    if (N == 0)
      continue;
    Seen += N;
    if (Seen > Rank) {
      V = DurationDist::valueFor(static_cast<uint16_t>(B));
      break;
    }
  }
  return std::min(std::max(V, minSeconds()), maxSeconds());
}

void LatencyHistogram::merge(const LatencyHistogram &Other) {
  for (int B = 0; B < DurationDist::NumBuckets; ++B) {
    uint32_t N = Other.Buckets[B].load(std::memory_order_relaxed);
    if (N != 0)
      Buckets[B].fetch_add(N, std::memory_order_relaxed);
  }
  Count.fetch_add(Other.Count.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  SumNanos.fetch_add(Other.SumNanos.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  uint64_t N = Other.MinNanos.load(std::memory_order_relaxed);
  uint64_t Prev = MinNanos.load(std::memory_order_relaxed);
  while (N < Prev &&
         !MinNanos.compare_exchange_weak(Prev, N, std::memory_order_relaxed))
    ;
  N = Other.MaxNanos.load(std::memory_order_relaxed);
  Prev = MaxNanos.load(std::memory_order_relaxed);
  while (N > Prev &&
         !MaxNanos.compare_exchange_weak(Prev, N, std::memory_order_relaxed))
    ;
}

void LatencyHistogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  SumNanos.store(0, std::memory_order_relaxed);
  MinNanos.store(UINT64_MAX, std::memory_order_relaxed);
  MaxNanos.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// MetricsSnapshotter
//===----------------------------------------------------------------------===//

static double steadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

MetricsSnapshotter::MetricsSnapshotter(const Telemetry &T,
                                       size_t WindowCapacity)
    : Reg(T), Capacity(WindowCapacity == 0 ? 1 : WindowCapacity),
      EpochSteadySeconds(steadyNowSeconds()) {}

const MetricsSnapshot &MetricsSnapshotter::sample() {
  return sample(steadyNowSeconds() - EpochSteadySeconds);
}

const MetricsSnapshot &MetricsSnapshotter::sample(double NowSeconds) {
  MetricsSnapshot S;
  S.TsSeconds = NowSeconds;
  S.Counters = Reg.counters();
  S.Gauges = Reg.gauges();
  Window.push_back(std::move(S));
  while (Window.size() > Capacity)
    Window.pop_front();
  return Window.back();
}

static double rateBetween(const MetricsSnapshot &A, const MetricsSnapshot &B,
                          const std::string &Name) {
  double Dt = B.TsSeconds - A.TsSeconds;
  if (!(Dt > 0.0))
    return 0.0;
  auto FindOrZero = [&](const MetricsSnapshot &S) -> int64_t {
    auto It = S.Counters.find(Name);
    return It == S.Counters.end() ? 0 : It->second;
  };
  return static_cast<double>(FindOrZero(B) - FindOrZero(A)) / Dt;
}

double MetricsSnapshotter::rate(const std::string &Name) const {
  if (Window.size() < 2)
    return 0.0;
  return rateBetween(Window[Window.size() - 2], Window.back(), Name);
}

double MetricsSnapshotter::windowRate(const std::string &Name) const {
  if (Window.size() < 2)
    return 0.0;
  return rateBetween(Window.front(), Window.back(), Name);
}

std::string MetricsSnapshotter::lastJsonLine() const {
  if (Window.empty())
    return "";
  const MetricsSnapshot &S = Window.back();
  json::Value Doc = json::Value::object();
  Doc.set("ts", json::Value::number(S.TsSeconds));
  json::Value Counters = json::Value::object();
  for (const auto &KV : S.Counters)
    Counters.set(KV.first,
                 json::Value::number(static_cast<double>(KV.second)));
  Doc.set("counters", std::move(Counters));
  json::Value Gauges = json::Value::object();
  for (const auto &KV : S.Gauges)
    Gauges.set(KV.first, json::Value::number(KV.second));
  Doc.set("gauges", std::move(Gauges));
  json::Value Rates = json::Value::object();
  if (Window.size() >= 2) {
    const MetricsSnapshot &Prev = Window[Window.size() - 2];
    for (const auto &KV : S.Counters) {
      double R = rateBetween(Prev, S, KV.first);
      if (R != 0.0)
        Rates.set(KV.first, json::Value::number(R));
    }
  }
  Doc.set("rates", std::move(Rates));
  return Doc.serialize();
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted telemetry
/// names map dots (and anything else) to underscores under a `ucc_`
/// namespace prefix.
static std::string promName(const std::string &Name) {
  std::string Out = "ucc_";
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out.push_back(Ok ? C : '_');
  }
  return Out;
}

std::string MetricsSnapshotter::toPrometheus() const {
  if (Window.empty())
    return "";
  const MetricsSnapshot &S = Window.back();
  std::string Out;
  char Buf[160];
  for (const auto &KV : S.Counters) {
    std::string N = promName(KV.first);
    Out += "# TYPE " + N + " counter\n";
    std::snprintf(Buf, sizeof(Buf), "%s %lld\n", N.c_str(),
                  static_cast<long long>(KV.second));
    Out += Buf;
  }
  for (const auto &KV : S.Gauges) {
    std::string N = promName(KV.first);
    Out += "# TYPE " + N + " gauge\n";
    std::snprintf(Buf, sizeof(Buf), "%s %.17g\n", N.c_str(), KV.second);
    Out += Buf;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// FlightRecorder
//===----------------------------------------------------------------------===//

FlightRecorder::FlightRecorder(const Telemetry &T, SloConfig C)
    : Reg(T), Cfg(std::move(C)) {}

bool FlightRecorder::check(double P99Us, int64_t Errors, double NowSeconds) {
  bool Breached = false;
  if (Cfg.P99LatencyUs > 0.0 && P99Us > Cfg.P99LatencyUs)
    Breached = true;
  if (Cfg.MaxErrors >= 0 && Errors > Cfg.MaxErrors)
    Breached = true;
  if (!Breached)
    return false;
  ++Breaches;
  if (Cfg.TracePath.empty() || Dumps >= Cfg.MaxDumps)
    return false;
  if (EverDumped && NowSeconds - LastDumpSeconds < Cfg.CooldownSeconds)
    return false;
  std::ofstream Out(Cfg.TracePath, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << Reg.toChromeTrace();
  Out.close();
  ++Dumps;
  EverDumped = true;
  LastDumpSeconds = NowSeconds;
  return true;
}
