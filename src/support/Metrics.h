//===- support/Metrics.h - time-series metrics over Telemetry ------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The time dimension that support/Telemetry lacks: Telemetry aggregates
/// a whole run into one final document, which answers "what did this run
/// cost" but not "what is this *service* doing right now". This layer
/// adds three pieces, all built on the same registry:
///
///  - `LatencyHistogram` — a thread-safe, mergeable log-bucketed latency
///    histogram (same bucket geometry as `DurationDist`, so quantiles
///    carry the same ~3% midpoint error). Serving paths record into it on
///    every request with two atomic increments; p50/p95/p99 are read on
///    demand without stopping the writers.
///
///  - `MetricsSnapshotter` — periodically samples a registry's
///    counters/gauges into a bounded window of timestamped snapshots and
///    derives windowed rates (plans/sec, joules/sec) from consecutive
///    samples. Snapshots serialize as JSONL (one object per line — the
///    `uccc monitor` wire format) and as Prometheus text exposition.
///
///  - `FlightRecorder` — watches SLO thresholds (p99 latency, error
///    count) and, on breach, dumps the registry's bounded event ring as a
///    Chrome trace file: the last moments before the incident, captured
///    without tracing overhead in the steady state beyond the ring
///    buffer itself.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_METRICS_H
#define UCC_SUPPORT_METRICS_H

#include "support/Telemetry.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace ucc {

/// Thread-safe log-bucketed latency histogram. Buckets are the
/// `DurationDist` geometry (16 linear sub-buckets per octave) held in a
/// dense atomic array so `record` is wait-free: one bucket increment plus
/// count/sum/min/max updates, all relaxed — the histogram is a
/// statistical instrument, not a synchronization point. Readers get a
/// consistent-enough view for monitoring; exact totals settle once
/// writers stop.
class LatencyHistogram {
public:
  LatencyHistogram();

  /// Records one latency observation (non-positive values land in the
  /// underflow bucket but still count).
  void record(double Seconds);

  uint64_t count() const;
  /// Smallest / largest recorded value, exact (0 when empty).
  double minSeconds() const;
  double maxSeconds() const;
  /// Mean of all recorded values, exact up to nanosecond rounding.
  double meanSeconds() const;
  /// Quantile \p Q in [0,1] from the bucket histogram, clamped to the
  /// exact [min, max] envelope (0 when empty).
  double quantileSeconds(double Q) const;

  /// Folds \p Other into this histogram (bucket-wise sum; min/max/count
  /// combine exactly).
  void merge(const LatencyHistogram &Other);

  /// Returns to the empty state. Not atomic with respect to concurrent
  /// writers — callers quiesce or tolerate a torn window boundary.
  void reset();

private:
  std::atomic<uint32_t> Buckets[DurationDist::NumBuckets];
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> SumNanos{0};
  std::atomic<uint64_t> MinNanos{UINT64_MAX};
  std::atomic<uint64_t> MaxNanos{0};
};

/// One timestamped sample of a registry's aggregate state.
struct MetricsSnapshot {
  double TsSeconds = 0.0; ///< seconds since the snapshotter's epoch
  std::map<std::string, int64_t> Counters;
  std::map<std::string, double> Gauges;
};

/// Samples a Telemetry registry into a bounded window of snapshots and
/// derives rates between consecutive samples. Single-threaded like the
/// registry it watches: the serving loop (or bench harness) calls
/// `sample()` at phase boundaries or on a cadence and appends
/// `lastJsonLine()` to the metrics file that `uccc monitor` tails.
class MetricsSnapshotter {
public:
  /// Watches \p T, keeping the most recent \p WindowCapacity snapshots.
  explicit MetricsSnapshotter(const Telemetry &T, size_t WindowCapacity = 128);

  /// Takes a snapshot stamped with the wall clock (seconds since the
  /// snapshotter was constructed) and returns it.
  const MetricsSnapshot &sample();
  /// Same with an injected timestamp — deterministic tests and replay.
  const MetricsSnapshot &sample(double NowSeconds);

  /// The retained window, oldest first.
  const std::deque<MetricsSnapshot> &window() const { return Window; }

  /// Rate of counter \p Name between the two most recent samples, in
  /// units/second (0 with fewer than two samples or a non-advancing
  /// clock).
  double rate(const std::string &Name) const;
  /// Same over the whole retained window (first to last sample).
  double windowRate(const std::string &Name) const;

  /// The newest snapshot as one compact JSON line:
  /// {"ts":..,"counters":{..},"gauges":{..},"rates":{..}} where `rates`
  /// holds per-second deltas for every counter that moved since the
  /// previous sample. Empty string before the first sample.
  std::string lastJsonLine() const;

  /// The newest snapshot as Prometheus text exposition: counters as
  /// `# TYPE ucc_<name> counter`, gauges as gauges; dots in metric names
  /// become underscores. Empty string before the first sample.
  std::string toPrometheus() const;

private:
  const Telemetry &Reg;
  size_t Capacity;
  std::deque<MetricsSnapshot> Window;
  double EpochSteadySeconds;
};

/// SLO thresholds and dump policy for the flight recorder. A threshold
/// left at its default is not checked.
struct SloConfig {
  double P99LatencyUs = 0.0; ///< breach when observed p99 exceeds this (>0)
  int64_t MaxErrors = -1;    ///< breach when error count exceeds this (>=0)
  std::string TracePath;     ///< where breach dumps go (required to dump)
  double CooldownSeconds = 5.0; ///< minimum spacing between dumps
  int MaxDumps = 3;             ///< lifetime dump cap
};

/// Watches SLO thresholds against a registry whose event ring is the
/// flight-recording buffer. `check` is called from the serving loop with
/// current observed values; on breach it snapshots the ring to
/// `Cfg.TracePath` (Chrome trace format) so the events leading up to the
/// breach survive for offline triage.
class FlightRecorder {
public:
  FlightRecorder(const Telemetry &T, SloConfig Cfg);

  /// Evaluates the thresholds; dumps and returns true when a breach
  /// fires (respecting cooldown and the lifetime cap). \p NowSeconds is
  /// any monotonically advancing clock.
  bool check(double P99Us, int64_t Errors, double NowSeconds);

  /// Breaches observed (including ones that hit the cooldown/cap and did
  /// not dump).
  int64_t breaches() const { return Breaches; }
  /// Dumps actually written.
  int dumps() const { return Dumps; }

private:
  const Telemetry &Reg;
  SloConfig Cfg;
  int64_t Breaches = 0;
  int Dumps = 0;
  double LastDumpSeconds = 0.0;
  bool EverDumped = false;
};

} // namespace ucc

#endif // UCC_SUPPORT_METRICS_H
