//===- support/ByteStream.h - little-endian (de)serialization ------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ByteWriter/ByteReader implement the little-endian wire format used for
/// binary images, edit scripts and compilation records. The reader is
/// bounds-checked and latches an error instead of reading out of range, so
/// corrupted inputs (e.g. a truncated edit script) are detected rather than
/// crashing the "sensor".
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_BYTESTREAM_H
#define UCC_SUPPORT_BYTESTREAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace ucc {

/// Appends little-endian scalars and length-prefixed strings to a buffer.
class ByteWriter {
public:
  void writeU8(uint8_t V) { Bytes.push_back(V); }

  void writeU16(uint16_t V) {
    writeU8(static_cast<uint8_t>(V & 0xff));
    writeU8(static_cast<uint8_t>(V >> 8));
  }

  void writeU32(uint32_t V) {
    writeU16(static_cast<uint16_t>(V & 0xffff));
    writeU16(static_cast<uint16_t>(V >> 16));
  }

  void writeU64(uint64_t V) {
    writeU32(static_cast<uint32_t>(V & 0xffffffffu));
    writeU32(static_cast<uint32_t>(V >> 32));
  }

  void writeI32(int32_t V) { writeU32(static_cast<uint32_t>(V)); }

  /// Writes a u32 length followed by the raw bytes of \p S.
  void writeString(const std::string &S) {
    writeU32(static_cast<uint32_t>(S.size()));
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }

  void writeBytes(const std::vector<uint8_t> &B) {
    Bytes.insert(Bytes.end(), B.begin(), B.end());
  }

  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Bounds-checked reader over a byte buffer.
///
/// After any out-of-range read the reader enters an error state; all further
/// reads return zero values. Callers check hadError() once at the end.
class ByteReader {
public:
  explicit ByteReader(const std::vector<uint8_t> &Buffer)
      : Data(Buffer.data()), Size(Buffer.size()) {}

  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  uint8_t readU8() {
    if (!ensure(1))
      return 0;
    return Data[Pos++];
  }

  uint16_t readU16() {
    uint16_t Lo = readU8();
    uint16_t Hi = readU8();
    return static_cast<uint16_t>(Lo | (Hi << 8));
  }

  uint32_t readU32() {
    uint32_t Lo = readU16();
    uint32_t Hi = readU16();
    return Lo | (Hi << 16);
  }

  uint64_t readU64() {
    uint64_t Lo = readU32();
    uint64_t Hi = readU32();
    return Lo | (Hi << 32);
  }

  int32_t readI32() { return static_cast<int32_t>(readU32()); }

  std::string readString() {
    uint32_t Len = readU32();
    if (!ensure(Len))
      return std::string();
    std::string S(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return S;
  }

  std::vector<uint8_t> readBytes(size_t N) {
    if (!ensure(N))
      return {};
    std::vector<uint8_t> Out(Data + Pos, Data + Pos + N);
    Pos += N;
    return Out;
  }

  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }
  bool hadError() const { return Error; }

  /// Latches the error state from outside: deserializers call this when a
  /// successfully *read* value is semantically invalid (bad enum value,
  /// negative size, out-of-range index), so one check at the end covers
  /// both truncation and corruption.
  void markError() { Error = true; }

private:
  bool ensure(size_t N) {
    if (Error || Size - Pos < N) {
      Error = true;
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Error = false;
};

} // namespace ucc

#endif // UCC_SUPPORT_BYTESTREAM_H
