//===- support/Interner.h - process-wide string interner ------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe string interner for symbol names (function, global, and
/// frame-object names). Interning maps each distinct string to a small
/// dense `Symbol` id; equal strings always intern to the same id for the
/// lifetime of the process, so cross-version name comparisons — the inner
/// loop of `instrsSimilar` during UCC register allocation — become integer
/// compares, and the per-commit `NewGlobalNames`/`NewFunctionNames` string
/// rebuilds in the compiler back half collapse to symbol-table lookups
/// with no string copies.
///
/// Ids are process-global and NOT stable across processes: never persist
/// them. Persisted artifacts (records, images) keep storing the strings.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_INTERNER_H
#define UCC_SUPPORT_INTERNER_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ucc {

/// A dense id for an interned string. Two symbols from the same interner
/// compare equal iff the underlying strings are equal.
using Symbol = uint32_t;

/// Thread-safe append-only string interner. Strings are stored once in
/// stable storage; `text()` views stay valid for the interner's lifetime.
class StringInterner {
public:
  /// Interns \p S, returning its stable id.
  Symbol intern(std::string_view S) {
    std::lock_guard<std::mutex> Guard(Lock);
    auto It = Ids.find(S);
    if (It != Ids.end())
      return It->second;
    Strings.push_back(std::string(S));
    Symbol Id = static_cast<Symbol>(Strings.size() - 1);
    // Key the map by a view into the stable storage so lookups never copy.
    Ids.emplace(std::string_view(Strings.back()), Id);
    return Id;
  }

  /// The text behind \p Id. Valid for the interner's lifetime.
  std::string_view text(Symbol Id) const {
    std::lock_guard<std::mutex> Guard(Lock);
    return Strings[static_cast<size_t>(Id)];
  }

  /// Number of distinct strings interned so far.
  size_t size() const {
    std::lock_guard<std::mutex> Guard(Lock);
    return Strings.size();
  }

  /// The process-wide interner used by the compile pipeline.
  static StringInterner &global();

private:
  /// Stable string storage: the vector holds owning pointers so interned
  /// views never move when the vector grows.
  class StableStrings {
  public:
    void push_back(std::string S) {
      Items.push_back(std::make_unique<std::string>(std::move(S)));
    }
    const std::string &back() const { return *Items.back(); }
    const std::string &operator[](size_t I) const { return *Items[I]; }
    size_t size() const { return Items.size(); }

  private:
    std::vector<std::unique_ptr<std::string>> Items;
  };

  struct ViewHash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>()(S);
    }
  };
  struct ViewEq {
    using is_transparent = void;
    bool operator()(std::string_view A, std::string_view B) const {
      return A == B;
    }
  };

  mutable std::mutex Lock;
  StableStrings Strings;
  std::unordered_map<std::string_view, Symbol, ViewHash, ViewEq> Ids;
};

/// A module's name table as interned symbols (index-aligned with the
/// string table it was built from).
using SymbolTable = std::vector<Symbol>;

/// Interns every name in \p Names (in order) into \p SI.
SymbolTable internNames(StringInterner &SI,
                        const std::vector<std::string> &Names);

} // namespace ucc

#endif // UCC_SUPPORT_INTERNER_H
