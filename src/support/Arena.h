//===- support/Arena.h - bump-pointer arena for short-lived scratch -------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for short-lived IR/MIR temporaries on the compile
/// hot path. Allocation is a pointer bump; deallocation is a no-op and the
/// whole arena is released at once when it is destroyed (or recycled with
/// `reset`). `ArenaAllocator<T>` adapts it to the standard allocator
/// interface so `std::vector`s of per-round scratch (flattened instruction
/// lists, match tables, chunk masks) can live in it; `ArenaVector<T>` is
/// the convenience alias. The arena is single-threaded by design — the
/// compile pipeline gives each `parallelFor` item its own.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_ARENA_H
#define UCC_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ucc {

/// Bump-pointer arena. Grows by doubling slabs (starting at 4 KiB) and
/// never returns memory until `reset()` or destruction.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Bytes with the given power-of-two \p Align.
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t)) {
    if (Bytes == 0)
      Bytes = 1;
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + (Align - 1)) & ~static_cast<uintptr_t>(Align - 1);
    if (Aligned + Bytes > reinterpret_cast<uintptr_t>(End)) {
      grow(Bytes + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + (Align - 1)) & ~static_cast<uintptr_t>(Align - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Bytes);
    Used += (Aligned + Bytes) - P;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Recycles every slab: subsequent allocations reuse the first slab.
  /// Anything previously allocated from the arena is dead after this.
  void reset() {
    if (Slabs.size() > 1)
      Slabs.resize(1);
    if (!Slabs.empty()) {
      Cur = Slabs.front().Data.get();
      End = Cur + Slabs.front().Size;
    }
    Used = 0;
  }

  /// Total bytes handed out since construction/reset (including alignment
  /// padding) — the number behind the `compile.arena_bytes` gauge.
  size_t bytesAllocated() const { return Used; }

  /// Total bytes reserved from the system across all slabs.
  size_t bytesReserved() const {
    size_t N = 0;
    for (const Slab &S : Slabs)
      N += S.Size;
    return N;
  }

private:
  struct Slab {
    std::unique_ptr<char[]> Data;
    size_t Size = 0;
  };

  void grow(size_t AtLeast) {
    size_t Size = Slabs.empty() ? 4096 : Slabs.back().Size * 2;
    while (Size < AtLeast)
      Size *= 2;
    Slab S;
    S.Data = std::make_unique<char[]>(Size);
    S.Size = Size;
    Cur = S.Data.get();
    End = Cur + Size;
    Slabs.push_back(std::move(S));
  }

  std::vector<Slab> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t Used = 0;
};

/// Standard-allocator adapter over an `Arena`. Deallocation is a no-op;
/// containers using it must not outlive the arena.
template <typename T> class ArenaAllocator {
public:
  using value_type = T;

  explicit ArenaAllocator(Arena &A) : A(&A) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U> &Other) : A(Other.arena()) {}

  T *allocate(size_t N) {
    return static_cast<T *>(A->allocate(N * sizeof(T), alignof(T)));
  }
  void deallocate(T *, size_t) {}

  Arena *arena() const { return A; }

  template <typename U> bool operator==(const ArenaAllocator<U> &O) const {
    return A == O.arena();
  }
  template <typename U> bool operator!=(const ArenaAllocator<U> &O) const {
    return A != O.arena();
  }

private:
  Arena *A;
};

/// A vector whose storage lives in an arena.
template <typename T> using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// Convenience constructor: `auto V = makeArenaVector<int>(A);`.
template <typename T> ArenaVector<T> makeArenaVector(Arena &A) {
  return ArenaVector<T>(ArenaAllocator<T>(A));
}

} // namespace ucc

#endif // UCC_SUPPORT_ARENA_H
