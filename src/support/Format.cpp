//===- support/Format.cpp - printf-style std::string formatting -----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vsnprintf-backed implementation of format()/formatv(): one sizing pass,
/// then an exact-size formatting pass into the returned string.
///
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdio>
#include <vector>

using namespace ucc;

std::string ucc::formatv(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();

  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string ucc::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = formatv(Fmt, Args);
  va_end(Args);
  return Out;
}
