//===- support/RNG.h - deterministic pseudo-random numbers ---------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic xorshift128+ generator used by property tests,
/// synthetic-chunk generators and the network simulator. Determinism
/// matters: every experiment must be exactly reproducible from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_RNG_H
#define UCC_SUPPORT_RNG_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ucc {

/// Deterministic xorshift128+ PRNG.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) {
    // Split the seed through two rounds of splitmix64 so that small seeds
    // still produce well-mixed initial state.
    State0 = splitmix(Seed);
    State1 = splitmix(State0);
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t S1 = State0;
    const uint64_t S0 = State1;
    State0 = S0;
    S1 ^= S1 << 23;
    State1 = S1 ^ S0 ^ (S1 >> 18) ^ (S0 >> 5);
    return State1 + S0;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be non-zero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below() requires a non-zero bound");
    return next() % Bound;
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// Returns a uniform double in [0, 1).
  double unitReal() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  static uint64_t splitmix(uint64_t X) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  }

  uint64_t State0;
  uint64_t State1;
};

/// Draws ranks 1..N with P(rank) proportional to rank^-S (a Zipf law,
/// precomputed as an inverse-CDF table). Fleet-version distributions are
/// the motivating user: most nodes run the version just behind the target,
/// a long tail lags several releases back, and serve-layer benches need
/// that skew reproducibly from a seed.
class ZipfSampler {
public:
  ZipfSampler(size_t N, double S) : Cdf(N) {
    assert(N > 0 && "ZipfSampler requires at least one rank");
    double Total = 0.0;
    for (size_t Rank = 1; Rank <= N; ++Rank) {
      Total += 1.0 / std::pow(static_cast<double>(Rank), S);
      Cdf[Rank - 1] = Total;
    }
    for (double &C : Cdf)
      C /= Total;
  }

  /// Returns a rank in [1, N]; rank 1 is the most probable.
  size_t sample(RNG &Rng) const {
    double U = Rng.unitReal();
    size_t Lo = 0, Hi = Cdf.size() - 1;
    while (Lo < Hi) {
      size_t Mid = (Lo + Hi) / 2;
      if (Cdf[Mid] < U)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo + 1;
  }

private:
  std::vector<double> Cdf;
};

} // namespace ucc

#endif // UCC_SUPPORT_RNG_H
