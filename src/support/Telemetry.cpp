//===- support/Telemetry.cpp - unified compilation telemetry --------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry implementation and the JSON serializer. The serializer emits a
/// single self-contained document (no external JSON dependency; built on
/// support/Format) whose schema is documented in docs/OBSERVABILITY.md and
/// pinned by tests/TelemetryTest.cpp.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/Format.h"

#include <cassert>

using namespace ucc;

const TelemetrySpan *TelemetrySpan::find(const std::string &ChildName) const {
  for (const std::unique_ptr<TelemetrySpan> &C : Children)
    if (C->Name == ChildName)
      return C.get();
  return nullptr;
}

Telemetry::Telemetry() = default;

void Telemetry::addCounter(const std::string &Name, int64_t Delta) {
  Counters[Name] += Delta;
}

void Telemetry::setGauge(const std::string &Name, double Value) {
  Gauges[Name] = Value;
}

void Telemetry::addGauge(const std::string &Name, double Delta) {
  Gauges[Name] += Delta;
}

void Telemetry::declareCounter(const std::string &Name) {
  Counters.emplace(Name, 0);
}

void Telemetry::declareStandardCounters() {
  static const char *Standard[] = {
      // lp: the solver substrate (Figs. 13-15).
      "lp.solves", "lp.pivots", "lp.ilp_solves", "lp.bb_nodes",
      // ra: UCC-RA (section 3).
      "ra.functions", "ra.total_instrs", "ra.matched_instrs",
      "ra.chunks_changed", "ra.chunks_unchanged", "ra.anchor_occurrences",
      "ra.pref_honored", "ra.pref_broken", "ra.inserted_movs",
      "ra.spilled_vregs", "ra.ilp_windows", "ra.ilp_binaries",
      "ra.ilp_constraints",
      // da: UCC-DA (section 4).
      "da.regions", "da.holes_filled", "da.hole_words", "da.relocated_vars",
      "da.region_words",
      // diff: edit scripts (section 2.2).
      "diff.scripts", "diff.prims", "diff.script_bytes", "diff.bytes.copy",
      "diff.bytes.remove", "diff.bytes.insert", "diff.bytes.replace",
      // sim: the SAVR simulator (section 5.1's Avrora stand-in).
      "sim.runs", "sim.steps", "sim.cycles", "sim.radio_packets",
      "sim.radio_words",
      // net: multi-hop dissemination (section 2.2).
      "net.floods", "net.packets", "net.bytes_on_air", "net.transmitters",
      "net.retransmissions", "net.failed_packets"};
  for (const char *Name : Standard)
    declareCounter(Name);
}

void Telemetry::beginSpan(const std::string &Name) {
  TelemetrySpan *Parent = Open.empty() ? &Root : Open.back().first;
  TelemetrySpan *Node =
      const_cast<TelemetrySpan *>(Parent->find(Name));
  if (!Node) {
    Parent->Children.push_back(std::make_unique<TelemetrySpan>());
    Node = Parent->Children.back().get();
    Node->Name = Name;
  }
  ++Node->Count;
  Open.emplace_back(Node, std::chrono::steady_clock::now());
}

void Telemetry::endSpan() {
  assert(!Open.empty() && "endSpan without a matching beginSpan");
  if (Open.empty())
    return;
  auto [Node, Start] = Open.back();
  Open.pop_back();
  Node->Seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
}

int64_t Telemetry::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double Telemetry::gauge(const std::string &Name) const {
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0.0 : It->second;
}

void Telemetry::clear() {
  Counters.clear();
  Gauges.clear();
  Root.Children.clear();
  Open.clear();
}

namespace {

/// Escapes \p S for use inside a JSON string literal.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

void spanToJson(const TelemetrySpan &Span, std::string &Out) {
  Out += format("{\"name\":\"%s\",\"seconds\":%.9f,\"count\":%lld,"
                "\"children\":[",
                jsonEscape(Span.Name).c_str(), Span.Seconds,
                static_cast<long long>(Span.Count));
  for (size_t K = 0; K < Span.Children.size(); ++K) {
    if (K != 0)
      Out += ",";
    spanToJson(*Span.Children[K], Out);
  }
  Out += "]}";
}

} // namespace

std::string Telemetry::toJson() const {
  std::string Out = "{\"version\":1,\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("\"%s\":%lld", jsonEscape(Name).c_str(),
                  static_cast<long long>(Value));
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, Value] : Gauges) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("\"%s\":%.9g", jsonEscape(Name).c_str(), Value);
  }
  Out += "},\"spans\":[";
  for (size_t K = 0; K < Root.Children.size(); ++K) {
    if (K != 0)
      Out += ",";
    spanToJson(*Root.Children[K], Out);
  }
  Out += "]}";
  return Out;
}

namespace {
thread_local Telemetry *CurrentTelemetry = nullptr;
} // namespace

Telemetry *ucc::currentTelemetry() { return CurrentTelemetry; }

TelemetryScope::TelemetryScope(Telemetry &T) : Prev(CurrentTelemetry) {
  CurrentTelemetry = &T;
}

TelemetryScope::~TelemetryScope() { CurrentTelemetry = Prev; }
