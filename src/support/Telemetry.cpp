//===- support/Telemetry.cpp - unified compilation telemetry --------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry implementation and the JSON serializer. The serializer emits a
/// single self-contained document (no external JSON dependency; built on
/// support/Format) whose schema is documented in docs/OBSERVABILITY.md and
/// pinned by tests/TelemetryTest.cpp.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

using namespace ucc;

uint16_t DurationDist::bucketFor(double Seconds) {
  if (!(Seconds > 0.0))
    return 0;
  int Exp = 0;
  double Frac = std::frexp(Seconds, &Exp); // Frac in [0.5, 1)
  if (Exp < MinExp)
    return 1; // underflow clamps into the lowest octave
  if (Exp > MaxExp) {
    Exp = MaxExp;
    Frac = 1.0; // overflow clamps into the highest sub-bucket
  }
  int Sub = static_cast<int>((Frac - 0.5) * 2.0 * SubBuckets);
  if (Sub >= SubBuckets)
    Sub = SubBuckets - 1;
  return static_cast<uint16_t>(1 + (Exp - MinExp) * SubBuckets + Sub);
}

double DurationDist::valueFor(uint16_t Bucket) {
  if (Bucket == 0)
    return 0.0;
  int Idx = Bucket - 1;
  int Exp = MinExp + Idx / SubBuckets;
  int Sub = Idx % SubBuckets;
  // The linear midpoint of the sub-bucket within its [0.5, 1) octave.
  double Frac = 0.5 + (Sub + 0.5) / (2.0 * SubBuckets);
  return std::ldexp(Frac, Exp);
}

void DurationDist::record(double Seconds) {
  uint16_t B = bucketFor(Seconds);
  auto It = std::lower_bound(
      Buckets.begin(), Buckets.end(), B,
      [](const std::pair<uint16_t, uint32_t> &E, uint16_t Key) {
        return E.first < Key;
      });
  if (It != Buckets.end() && It->first == B)
    ++It->second;
  else
    Buckets.insert(It, {B, 1});
  ++Count;
}

void DurationDist::merge(const DurationDist &Other) {
  if (Other.Buckets.empty())
    return;
  // Merge-join the two sorted bucket lists.
  std::vector<std::pair<uint16_t, uint32_t>> Out;
  Out.reserve(Buckets.size() + Other.Buckets.size());
  size_t A = 0, B = 0;
  while (A < Buckets.size() || B < Other.Buckets.size()) {
    if (B == Other.Buckets.size() ||
        (A < Buckets.size() && Buckets[A].first < Other.Buckets[B].first)) {
      Out.push_back(Buckets[A++]);
    } else if (A == Buckets.size() ||
               Other.Buckets[B].first < Buckets[A].first) {
      Out.push_back(Other.Buckets[B++]);
    } else {
      Out.push_back({Buckets[A].first,
                     Buckets[A].second + Other.Buckets[B].second});
      ++A;
      ++B;
    }
  }
  Buckets = std::move(Out);
  Count += Other.Count;
}

double DurationDist::quantileSeconds(double Q) const {
  if (Count == 0)
    return 0.0;
  double Clamped = std::min(std::max(Q, 0.0), 1.0);
  // The (0-based) rank of the requested entry, nearest-rank style.
  uint64_t Rank = static_cast<uint64_t>(
      Clamped * static_cast<double>(Count - 1) + 0.5);
  uint64_t Seen = 0;
  for (const auto &[Bucket, N] : Buckets) {
    Seen += N;
    if (Seen > Rank)
      return valueFor(Bucket);
  }
  return valueFor(Buckets.back().first);
}

const TelemetrySpan *TelemetrySpan::find(const std::string &ChildName) const {
  for (const std::unique_ptr<TelemetrySpan> &C : Children)
    if (C->Name == ChildName)
      return C.get();
  return nullptr;
}

double TelemetrySpan::quantileSeconds(double Q) const {
  if (Dist.Count == 0)
    return 0.0;
  // The bucket midpoint can stick out past the exact envelope by a
  // half-bucket; clamp so min <= p50 <= p95 <= max always holds.
  return std::min(std::max(Dist.quantileSeconds(Q), MinSeconds),
                  MaxSeconds);
}

Telemetry::Telemetry() : TraceEpoch(std::chrono::steady_clock::now()) {}

void Telemetry::addCounter(const std::string &Name, int64_t Delta) {
  Counters[Name] += Delta;
}

void Telemetry::setGauge(const std::string &Name, double Value) {
  Gauges[Name] = Value;
}

void Telemetry::addGauge(const std::string &Name, double Delta) {
  Gauges[Name] += Delta;
}

void Telemetry::declareCounter(const std::string &Name) {
  Counters.emplace(Name, 0);
}

void Telemetry::declareStandardCounters() {
  static const char *Standard[] = {
      // lp: the solver substrate (Figs. 13-15).
      "lp.solves", "lp.pivots", "lp.ilp_solves", "lp.bb_nodes",
      "lp.warm_solves", "lp.ilp_timeouts",
      // ra: UCC-RA (section 3).
      "ra.functions", "ra.total_instrs", "ra.matched_instrs",
      "ra.chunks_changed", "ra.chunks_unchanged", "ra.anchor_occurrences",
      "ra.pref_honored", "ra.pref_broken", "ra.inserted_movs",
      "ra.spilled_vregs", "ra.ilp_windows", "ra.ilp_binaries",
      "ra.ilp_constraints", "ra.window_cache_hits",
      "ra.window_cache_misses",
      // compile: the incremental-recompilation cache (core/CompileCache).
      "compile.cache_hits", "compile.cache_misses",
      "compile.cache_evictions",
      // da: UCC-DA (section 4).
      "da.regions", "da.holes_filled", "da.hole_words", "da.relocated_vars",
      "da.region_words",
      // diff: edit scripts (section 2.2) and the alignment engine.
      "diff.scripts", "diff.prims", "diff.script_bytes", "diff.bytes.copy",
      "diff.bytes.remove", "diff.bytes.insert", "diff.bytes.replace",
      "diff.compositions", "diff.anchors", "diff.myers_d",
      "diff.fallback_blocks", "diff.oracle_checks",
      // store: the sink-side version chain and its update planner.
      "store.commits", "store.loads", "store.plans", "store.plans_direct",
      "store.plans_chained",
      // serve: the request-serving front end over the store. Per-shard
      // slices appear as serve.shard.<i>.{hits,misses,evictions} on
      // first use (shard count is a runtime knob, so they cannot be
      // pre-declared here).
      "serve.plans", "serve.cache_hits", "serve.cache_misses",
      "serve.rejected", "serve.evictions", "serve.admission_rejects",
      "serve.ttl_expired", "serve.inflight_waits", "serve.batches",
      "serve.batch_deduped", "serve.precomputed", "serve.commits",
      // sim: the SAVR simulator (section 5.1's Avrora stand-in).
      "sim.runs", "sim.steps", "sim.cycles", "sim.radio_packets",
      "sim.radio_words",
      // net: multi-hop dissemination (section 2.2).
      "net.floods", "net.packets", "net.bytes_on_air", "net.transmitters",
      "net.retransmissions", "net.failed_packets", "net.campaigns",
      "net.cohorts", "net.bad_packet_format",
      // net.event: the discrete-event fleet simulator (net/EventSim).
      "net.event.processed", "net.event.batches",
      "net.event.parallel_batches", "net.collisions", "net.backoffs",
      "net.sleep.defers", "net.sleep.misses", "net.overheard",
      "net.beacons", "net.requests", "net.nodes_incomplete"};
  for (const char *Name : Standard)
    declareCounter(Name);
}

void Telemetry::beginSpan(const std::string &Name) {
  TelemetrySpan *Parent = Open.empty() ? &Root : Open.back().first;
  TelemetrySpan *Node =
      const_cast<TelemetrySpan *>(Parent->find(Name));
  if (!Node) {
    Parent->Children.push_back(std::make_unique<TelemetrySpan>());
    Node = Parent->Children.back().get();
    Node->Name = Name;
  }
  ++Node->Count;
  if (EventsOn) {
    // Attribute the slice to the active request: the trace id rides in
    // the args, so Perfetto queries can pull one request's lifeline out
    // of a multi-request, multi-thread timeline.
    std::vector<std::pair<std::string, double>> Args;
    if (const TraceContext *Ctx = currentTraceContext())
      Args.push_back({"trace", static_cast<double>(Ctx->TraceId)});
    recordEvent(TelemetryEvent::Phase::Begin, "span", Name, DefaultTrack,
                std::move(Args));
  }
  Open.emplace_back(Node, std::chrono::steady_clock::now());
}

void Telemetry::endSpan() {
  assert(!Open.empty() && "endSpan without a matching beginSpan");
  if (Open.empty())
    return;
  auto [Node, Start] = Open.back();
  Open.pop_back();
  double D =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Node->Seconds += D;
  if (Node->Dist.Count == 0) {
    Node->MinSeconds = D;
    Node->MaxSeconds = D;
  } else {
    Node->MinSeconds = std::min(Node->MinSeconds, D);
    Node->MaxSeconds = std::max(Node->MaxSeconds, D);
  }
  Node->Dist.record(D);
  if (EventsOn)
    recordEvent(TelemetryEvent::Phase::End, "span", Node->Name,
                DefaultTrack);
}

namespace {

/// Folds \p From into \p Into: totals add, the duration distribution
/// combines (exact min/max; bucket histograms merge-join), children merge
/// recursively by name.
void mergeSpanInto(TelemetrySpan &Into, const TelemetrySpan &From) {
  Into.Seconds += From.Seconds;
  Into.Count += From.Count;
  if (From.Dist.Count != 0) {
    if (Into.Dist.Count == 0) {
      Into.MinSeconds = From.MinSeconds;
      Into.MaxSeconds = From.MaxSeconds;
    } else {
      Into.MinSeconds = std::min(Into.MinSeconds, From.MinSeconds);
      Into.MaxSeconds = std::max(Into.MaxSeconds, From.MaxSeconds);
    }
    Into.Dist.merge(From.Dist);
  }
  for (const std::unique_ptr<TelemetrySpan> &FromChild : From.Children) {
    TelemetrySpan *IntoChild =
        const_cast<TelemetrySpan *>(Into.find(FromChild->Name));
    if (!IntoChild) {
      Into.Children.push_back(std::make_unique<TelemetrySpan>());
      IntoChild = Into.Children.back().get();
      IntoChild->Name = FromChild->Name;
    }
    mergeSpanInto(*IntoChild, *FromChild);
  }
}

} // namespace

void Telemetry::mergeChild(const Telemetry &Child) {
  assert(Child.Open.empty() && "merging a registry with open spans");
  for (const auto &[Name, Value] : Child.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, Value] : Child.Gauges)
    Gauges[Name] += Value;

  // Graft the child's span forest under the innermost open span: a
  // parallel region started inside `ra` folds its per-item spans where
  // the serial loop would have put them.
  TelemetrySpan *Graft = Open.empty() ? &Root : Open.back().first;
  for (const std::unique_ptr<TelemetrySpan> &FromChild : Child.Root.Children) {
    TelemetrySpan *IntoChild =
        const_cast<TelemetrySpan *>(Graft->find(FromChild->Name));
    if (!IntoChild) {
      Graft->Children.push_back(std::make_unique<TelemetrySpan>());
      IntoChild = Graft->Children.back().get();
      IntoChild->Name = FromChild->Name;
    }
    mergeSpanInto(*IntoChild, *FromChild);
  }

  if (!EventsOn || !Child.EventsOn || Child.Events.empty())
    return;
  // Both clocks are steady_clock, so the epoch difference re-bases the
  // child's event timestamps onto this registry's timeline.
  double Offset = std::chrono::duration<double, std::micro>(
                      Child.TraceEpoch - TraceEpoch)
                      .count();
  for (const TelemetryEvent *E : Child.eventsInOrder()) {
    TelemetryEvent Copy = *E;
    Copy.TsMicros += Offset;
    if (Events.size() < EventCapacity) {
      Events.push_back(std::move(Copy));
      continue;
    }
    Events[EventHead] = std::move(Copy);
    EventHead = (EventHead + 1) % EventCapacity;
    ++EventsDropped;
  }
  EventsDropped += Child.EventsDropped;
  // Re-sort the retained buffer chronologically (stable: ties keep their
  // merge order, so repeated merges stay deterministic).
  std::vector<TelemetryEvent> InOrder;
  InOrder.reserve(Events.size());
  for (size_t K = 0; K < Events.size(); ++K)
    InOrder.push_back(std::move(Events[(EventHead + K) % Events.size()]));
  std::stable_sort(InOrder.begin(), InOrder.end(),
                   [](const TelemetryEvent &A, const TelemetryEvent &B) {
                     return A.TsMicros < B.TsMicros;
                   });
  Events = std::move(InOrder);
  EventHead = 0;
}

int64_t Telemetry::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double Telemetry::gauge(const std::string &Name) const {
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0.0 : It->second;
}

void Telemetry::clear() {
  Counters.clear();
  Gauges.clear();
  Root.Children.clear();
  Open.clear();
  Events.clear();
  EventCapacity = 0;
  EventHead = 0;
  EventsDropped = 0;
  EventsOn = false;
  DefaultTrack = 0;
  TraceEpoch = std::chrono::steady_clock::now();
}

void Telemetry::enableEvents(size_t Capacity) {
  assert(Capacity > 0 && "event ring buffer needs at least one slot");
  EventsOn = true;
  EventCapacity = Capacity;
  Events.reserve(std::min<size_t>(Capacity, 1024));
}

double Telemetry::microsSinceEpoch() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - TraceEpoch)
      .count();
}

void Telemetry::recordEvent(TelemetryEvent::Phase Ph,
                            const std::string &Category,
                            const std::string &Name, int32_t Track,
                            std::vector<std::pair<std::string, double>> Args,
                            uint64_t FlowId) {
  if (!EventsOn)
    return;
  TelemetryEvent E;
  E.Ph = Ph;
  E.TsMicros = microsSinceEpoch();
  E.Track = Track;
  E.FlowId = FlowId;
  E.Category = Category;
  E.Name = Name;
  E.Args = std::move(Args);
  if (Events.size() < EventCapacity) {
    Events.push_back(std::move(E));
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  Events[EventHead] = std::move(E);
  EventHead = (EventHead + 1) % EventCapacity;
  ++EventsDropped;
}

std::vector<const TelemetryEvent *> Telemetry::eventsInOrder() const {
  std::vector<const TelemetryEvent *> Out;
  Out.reserve(Events.size());
  for (size_t K = 0; K < Events.size(); ++K)
    Out.push_back(&Events[(EventHead + K) % Events.size()]);
  return Out;
}

namespace {

/// Escapes \p S for use inside a JSON string literal.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

void spanToJson(const TelemetrySpan &Span, std::string &Out) {
  Out += format("{\"name\":\"%s\",\"seconds\":%.9f,\"count\":%lld,"
                "\"dist\":{\"min\":%.9f,\"p50\":%.9f,\"p95\":%.9f,"
                "\"max\":%.9f},\"children\":[",
                jsonEscape(Span.Name).c_str(), Span.Seconds,
                static_cast<long long>(Span.Count), Span.MinSeconds,
                Span.quantileSeconds(0.50), Span.quantileSeconds(0.95),
                Span.MaxSeconds);
  for (size_t K = 0; K < Span.Children.size(); ++K) {
    if (K != 0)
      Out += ",";
    spanToJson(*Span.Children[K], Out);
  }
  Out += "]}";
}

} // namespace

std::string Telemetry::toJson() const {
  std::string Out = "{\"version\":1,\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("\"%s\":%lld", jsonEscape(Name).c_str(),
                  static_cast<long long>(Value));
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, Value] : Gauges) {
    if (!First)
      Out += ",";
    First = false;
    Out += format("\"%s\":%.9g", jsonEscape(Name).c_str(), Value);
  }
  Out += "},\"spans\":[";
  for (size_t K = 0; K < Root.Children.size(); ++K) {
    if (K != 0)
      Out += ",";
    spanToJson(*Root.Children[K], Out);
  }
  Out += "]}";
  return Out;
}

std::string Telemetry::toChromeTrace() const {
  // The Chrome trace-event "JSON object format". Every event carries
  // pid 1 (one process: the toolchain) and tid = its track, so per-node
  // events land on per-node rows in Perfetto / chrome://tracing.
  std::string Out = format("{\"displayTimeUnit\":\"ms\","
                           "\"otherData\":{\"producer\":\"ucc\","
                           "\"dropped_events\":%llu},\"traceEvents\":[",
                           static_cast<unsigned long long>(EventsDropped));
  bool First = true;
  auto append = [&](const std::string &Event) {
    if (!First)
      Out += ",";
    First = false;
    Out += Event;
  };
  // Thread-name metadata: one row label per distinct track.
  std::vector<int32_t> Tracks;
  for (const TelemetryEvent *E : eventsInOrder())
    if (std::find(Tracks.begin(), Tracks.end(), E->Track) == Tracks.end())
      Tracks.push_back(E->Track);
  std::sort(Tracks.begin(), Tracks.end());
  append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"ucc\"}}");
  for (int32_t Track : Tracks) {
    // Worker rows are labeled by worker index so a Perfetto timeline
    // reads "pipeline / node 3 / worker 0 / worker 1", not bare tids.
    std::string Label = Track == 0 ? std::string("pipeline")
                        : Track >= Telemetry::WorkerTrackBase
                            ? format("worker %d",
                                     Track - Telemetry::WorkerTrackBase)
                            : format("node %d", Track);
    append(format("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                  Track, Label.c_str()));
  }
  for (const TelemetryEvent *E : eventsInOrder()) {
    char Ph = 'i';
    switch (E->Ph) {
    case TelemetryEvent::Phase::Instant:
      Ph = 'i';
      break;
    case TelemetryEvent::Phase::Begin:
      Ph = 'B';
      break;
    case TelemetryEvent::Phase::End:
      Ph = 'E';
      break;
    case TelemetryEvent::Phase::Counter:
      Ph = 'C';
      break;
    case TelemetryEvent::Phase::FlowStart:
      Ph = 's';
      break;
    case TelemetryEvent::Phase::FlowEnd:
      Ph = 'f';
      break;
    }
    std::string Ev = format(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,"
        "\"pid\":1,\"tid\":%d",
        jsonEscape(E->Name).c_str(), jsonEscape(E->Category).c_str(), Ph,
        E->TsMicros, E->Track);
    if (E->Ph == TelemetryEvent::Phase::Instant)
      Ev += ",\"s\":\"t\""; // thread-scoped instant marker
    if (E->Ph == TelemetryEvent::Phase::FlowStart ||
        E->Ph == TelemetryEvent::Phase::FlowEnd) {
      Ev += format(",\"id\":%llu",
                   static_cast<unsigned long long>(E->FlowId));
      // Bind the arrow head to the enclosing slice rather than the next
      // one, so the flow lands on the worker's task slice itself.
      if (E->Ph == TelemetryEvent::Phase::FlowEnd)
        Ev += ",\"bp\":\"e\"";
    }
    if (!E->Args.empty() || E->Ph == TelemetryEvent::Phase::Counter) {
      Ev += ",\"args\":{";
      for (size_t K = 0; K < E->Args.size(); ++K) {
        if (K != 0)
          Ev += ",";
        Ev += format("\"%s\":%.9g", jsonEscape(E->Args[K].first).c_str(),
                     E->Args[K].second);
      }
      Ev += "}";
    }
    Ev += "}";
    append(Ev);
  }
  Out += "]}";
  return Out;
}

namespace {
thread_local Telemetry *CurrentTelemetry = nullptr;
thread_local const TraceContext *CurrentTraceContext = nullptr;
std::atomic<uint64_t> TraceIdCounter{1};
} // namespace

Telemetry *ucc::currentTelemetry() { return CurrentTelemetry; }

TelemetryScope::TelemetryScope(Telemetry &T) : Prev(CurrentTelemetry) {
  CurrentTelemetry = &T;
}

TelemetryScope::~TelemetryScope() { CurrentTelemetry = Prev; }

const TraceContext *ucc::currentTraceContext() {
  return CurrentTraceContext;
}

uint64_t ucc::nextTraceId() {
  return TraceIdCounter.fetch_add(1, std::memory_order_relaxed);
}

TraceContextScope::TraceContextScope(TraceContext C)
    : Ctx(C), Prev(CurrentTraceContext) {
  CurrentTraceContext = &Ctx;
}

TraceContextScope::~TraceContextScope() { CurrentTraceContext = Prev; }
