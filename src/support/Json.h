//===- support/Json.h - minimal JSON document model -----------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON value model with a parser and serializer —
/// just enough for the reporting toolchain (`ucc-report`, bench report
/// files, `bench/baseline.json`). Objects preserve insertion order so
/// generated documents diff cleanly in review. Parsing is strict enough
/// for machine-written documents; error handling is "return nullopt".
///
/// This is intentionally not a general-purpose JSON library: no comments,
/// no \\uXXXX surrogate pairs, numbers are doubles (with integral values
/// round-tripping exactly up to 2^53).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_JSON_H
#define UCC_SUPPORT_JSON_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ucc {
namespace json {

/// One JSON value of any kind. Arrays/objects own their elements by
/// value; objects are insertion-ordered key/value vectors.
struct Value {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;

  Value() = default;
  static Value null() { return Value(); }
  static Value boolean(bool V);
  static Value number(double V);
  static Value string(std::string V);
  static Value array();
  static Value object();

  /// Object member, or null when absent / not an object.
  const Value *find(const std::string &Key) const;
  Value *find(const std::string &Key);

  /// Sets (appending or replacing) object member \p Key.
  Value &set(const std::string &Key, Value V);

  /// Convenience readers with defaults (for optional schema fields).
  double numberOr(const std::string &Key, double Default) const;
  std::string stringOr(const std::string &Key,
                       const std::string &Default) const;

  /// Serializes the value. \p Indent < 0 emits the compact one-line form;
  /// \p Indent >= 0 pretty-prints with that many leading spaces per
  /// nesting level (2 is the conventional choice for checked-in files).
  std::string serialize(int Indent = -1) const;
};

/// Parses \p Text as one JSON document (trailing whitespace allowed).
std::optional<Value> parse(const std::string &Text);

/// Escapes \p S for use inside a JSON string literal.
std::string escape(const std::string &S);

} // namespace json
} // namespace ucc

#endif // UCC_SUPPORT_JSON_H
