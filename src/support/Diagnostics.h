//===- support/Diagnostics.h - source locations and diagnostics ----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic engine shared by the MiniC frontend and
/// later pipeline stages. Errors are collected, never thrown: the library is
/// exception-free.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_DIAGNOSTICS_H
#define UCC_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace ucc {

/// A 1-based line/column position in a MiniC source buffer. Line 0 denotes
/// an unknown location (e.g. diagnostics raised after parsing).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
};

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics emitted by a pipeline stage.
///
/// A DiagnosticEngine is passed by reference through the frontend; callers
/// check hasErrors() after each stage and render the collected diagnostics
/// however they like (tests match on substrings, tools print them).
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: kind: message" lines.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace ucc

#endif // UCC_SUPPORT_DIAGNOSTICS_H
