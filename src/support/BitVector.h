//===- support/BitVector.h - dynamic bit set ------------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity dynamic bitset used by the dataflow analyses and the
/// register allocators. Word-parallel union/intersection keep the liveness
/// fixpoint cheap.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SUPPORT_BITVECTOR_H
#define UCC_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ucc {

/// Dynamic bitset with word-parallel set operations.
class BitVector {
public:
  BitVector() = default;

  explicit BitVector(size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  size_t size() const { return NumBits; }

  bool test(size_t Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }

  void set(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] |= uint64_t(1) << (Idx % 64);
  }

  void reset(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// this |= RHS. Returns true if any bit changed.
  bool unionWith(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t Old = Words[I];
      Words[I] |= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// this &= RHS.
  void intersectWith(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= RHS.Words[I];
  }

  /// this &= ~RHS.
  void subtract(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~RHS.Words[I];
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }

  /// Invokes \p Fn for every set bit index, in increasing order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t WI = 0; WI < Words.size(); ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace ucc

#endif // UCC_SUPPORT_BITVECTOR_H
