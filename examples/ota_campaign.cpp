//===- examples/ota_campaign.cpp - network-wide reprogramming -------------===//
//
// Disseminates one real update (Fig. 9 case 8) across multi-hop sensor
// networks and accounts the radio energy per node — the deployment-scale
// view of the paper's introduction: a deep network relays every byte of
// the script over dozens of hops, so script size is the lever.
//
// Build and run:   ./build/examples/ota_campaign
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "net/Network.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ucc;

namespace {

size_t scriptBytesFor(const UpdateCase &Case, bool UpdateConscious) {
  DiagnosticEngine Diag;
  auto V1 = Compiler::compile(Case.OldSource, CompileOptions(), Diag);
  CompileOptions Opts;
  if (UpdateConscious) {
    Opts.RA = RegAllocKind::UpdateConscious;
    Opts.DA = DataAllocKind::UpdateConscious;
  }
  auto V2 = Compiler::recompile(Case.NewSource, V1->Record, Opts, Diag);
  return makeUpdate(*V1, *V2).ScriptBytes;
}

void report(const char *Name, const Topology &T, size_t BaseBytes,
            size_t UccBytes) {
  DisseminationResult Base = disseminate(T, BaseBytes);
  DisseminationResult Ucc = disseminate(T, UccBytes);
  std::printf("%-22s %5d nodes, %3d hops deep\n", Name, T.NumNodes,
              Base.MaxHops);
  std::printf("  oblivious: %4d packets, %7zu bytes on air, %.3e J "
              "network-wide\n",
              Base.Packets, Base.BytesOnAir, Base.totalJoules());
  std::printf("  conscious: %4d packets, %7zu bytes on air, %.3e J "
              "network-wide  (%.1f%% saved)\n",
              Ucc.Packets, Ucc.BytesOnAir, Ucc.totalJoules(),
              100.0 * (Base.totalJoules() - Ucc.totalJoules()) /
                  Base.totalJoules());
}

} // namespace

int main() {
  const UpdateCase &Case = updateCases()[7]; // case 8, a medium update
  std::printf("Update: case %d — %s\n\n", Case.Id,
              Case.Description.c_str());

  size_t BaseBytes = scriptBytesFor(Case, /*UpdateConscious=*/false);
  size_t UccBytes = scriptBytesFor(Case, /*UpdateConscious=*/true);
  std::printf("script: %zu bytes (oblivious) vs %zu bytes (conscious)\n\n",
              BaseBytes, UccBytes);

  // The paper's motivating deep network: ~70 hops to the farthest node.
  report("line of 71", Topology::line(71), BaseBytes, UccBytes);
  report("16x16 grid", Topology::grid(16, 16), BaseBytes, UccBytes);
  report("single-hop star(64)", Topology::star(64), BaseBytes, UccBytes);

  // A noisy channel: every lost packet is a retransmission the sender
  // pays for, so smaller scripts win twice.
  RadioChannel Noisy;
  Noisy.LossRate = 0.3;
  DisseminationResult NoisyBase = disseminate(
      Topology::line(71), BaseBytes, PacketFormat(), Mica2Power(), Noisy);
  DisseminationResult NoisyUcc = disseminate(
      Topology::line(71), UccBytes, PacketFormat(), Mica2Power(), Noisy);
  std::printf("\nwith 30%% packet loss on the 71-node line:\n");
  std::printf("  oblivious: %4d retransmissions, %.3e J\n",
              NoisyBase.Retransmissions, NoisyBase.totalJoules());
  std::printf("  conscious: %4d retransmissions, %.3e J\n",
              NoisyUcc.Retransmissions, NoisyUcc.totalJoules());

  // Lifetime view for the most burdened node (next to the sink).
  Topology Line = Topology::line(71);
  DisseminationResult Base = disseminate(Line, BaseBytes);
  DisseminationResult Ucc = disseminate(Line, UccBytes);
  // A 2700 mAh battery at 3 V holds ~29 kJ.
  double BatteryJ = 2.7 * 3600.0 * 3.0;
  std::printf("\nbusiest relay node spends %.2e J (oblivious) vs %.2e J "
              "(conscious) per update\n",
              Base.PerNodeJoules[1], Ucc.PerNodeJoules[1]);
  std::printf("=> %.0f vs %.0f such updates per battery, all else "
              "idle\n",
              BatteryJ / Base.PerNodeJoules[1],
              BatteryJ / Ucc.PerNodeJoules[1]);
  return 0;
}
