//===- examples/crypto_field_patch.cpp - patching deployed crypto ---------===//
//
// The AES benchmark as a field-update story: the deployed nodes encrypt
// their readings with AES-128; the update adds ciphertext-stealing-style
// output masking to the transmit path. Crypto code is big (the S-box
// machinery dominates the image), so retransmitting it whole is exactly
// what the paper's diff-based dissemination avoids.
//
// Build and run:   ./build/examples/crypto_field_patch
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace ucc;

int main() {
  DiagnosticEngine Diag;
  const std::string &AesV1 = workloadSource("AES");

  // The update: mask each output byte with a rolling counter before it
  // leaves the node (a defensive tweak to frustrate traffic analysis).
  std::string AesV2 = AesV1;
  const std::string Needle = "  for (i = 0; i < 16; i = i + 1) {\n"
                             "    __out(15, state[i]);\n"
                             "  }";
  const std::string Patch = "  int rolling = 0x5a;\n"
                            "  for (i = 0; i < 16; i = i + 1) {\n"
                            "    __out(15, state[i] ^ rolling);\n"
                            "    rolling = (rolling + 17) & 0xff;\n"
                            "  }";
  size_t At = AesV2.find(Needle);
  if (At == std::string::npos) {
    std::fprintf(stderr, "needle not found in AES source\n");
    return 1;
  }
  AesV2.replace(At, Needle.size(), Patch);

  auto V1 = Compiler::compile(AesV1, CompileOptions(), Diag);
  if (!V1) {
    std::fprintf(stderr, "compile failed:\n%s", Diag.str().c_str());
    return 1;
  }

  CompileOptions Ucc;
  Ucc.RA = RegAllocKind::UpdateConscious;
  Ucc.DA = DataAllocKind::UpdateConscious;
  auto V2Ucc = Compiler::recompile(AesV2, V1->Record, Ucc, Diag);
  auto V2Base = Compiler::recompile(AesV2, V1->Record, CompileOptions(),
                                    Diag);
  if (!V2Ucc || !V2Base) {
    std::fprintf(stderr, "recompile failed:\n%s", Diag.str().c_str());
    return 1;
  }

  UpdatePackage PkgUcc = makeUpdate(*V1, *V2Ucc);
  UpdatePackage PkgBase = makeUpdate(*V1, *V2Base);

  std::printf("AES image: %zu instructions (%zu bytes)\n",
              V1->Image.Code.size(), V1->Image.transmitBytes());
  std::printf("\n%-18s %10s %14s\n", "", "Diff_inst", "script bytes");
  std::printf("%-18s %10d %14zu\n", "update-oblivious",
              PkgBase.Diff.totalDiffInst(), PkgBase.ScriptBytes);
  std::printf("%-18s %10d %14zu\n", "update-conscious",
              PkgUcc.Diff.totalDiffInst(), PkgUcc.ScriptBytes);
  std::printf("%-18s %10s %14zu\n", "full reflash", "-",
              V2Ucc->Image.transmitBytes());

  // Prove the patched node still encrypts correctly: unmask the outputs
  // and compare with the FIPS-197 ciphertext.
  BinaryImage Patched;
  if (!applyUpdate(V1->Image, PkgUcc.Update, Patched)) {
    std::fprintf(stderr, "patch failed\n");
    return 1;
  }
  SimOptions Sim;
  Sim.MaxSteps = 50'000'000;
  RunResult R = runImage(Patched, Sim);
  if (R.Trapped || R.DebugTrace.size() != 16) {
    std::fprintf(stderr, "patched AES run failed: %s\n",
                 R.TrapReason.c_str());
    return 1;
  }
  const int Expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                            0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  int Rolling = 0x5a;
  bool Ok = true;
  for (int K = 0; K < 16; ++K) {
    int Unmasked = (R.DebugTrace[static_cast<size_t>(K)] ^ Rolling) & 0xff;
    Ok &= Unmasked == Expected[K];
    Rolling = (Rolling + 17) & 0xff;
  }
  std::printf("\npatched node's masked ciphertext unmasks to FIPS-197 "
              "vector: %s\n",
              Ok ? "yes" : "NO");
  return Ok ? 0 : 1;
}
