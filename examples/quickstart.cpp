//===- examples/quickstart.cpp - the five-minute tour ---------------------===//
//
// Compiles a small sensor program, applies a source update, recompiles it
// update-consciously against the stored compilation record, and walks the
// resulting edit script through the sensor-side patcher — the complete
// sink-to-sensor flow of the paper's Figs. 1 and 2.
//
// Build and run:   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace ucc;

namespace {

const char *VersionOne = R"(
int threshold = 30;
int alarms;

int classify(int sample) {
  int level = sample & 0xff;
  if (level > threshold) {
    alarms = alarms + 1;
    return 1;
  }
  return 0;
}

void main() {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    int sample = __in(4);
    if (classify(sample)) {
      __out(0, 1);
    }
  }
  __out(15, alarms);
  __halt();
}
)";

// The field update: a hysteresis band instead of a single threshold.
const char *VersionTwo = R"(
int threshold = 30;
int margin = 5;
int alarms;

int classify(int sample) {
  int level = sample & 0xff;
  if (level > threshold + margin) {
    alarms = alarms + 1;
    return 1;
  }
  return 0;
}

void main() {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    int sample = __in(4);
    if (classify(sample)) {
      __out(0, 1);
    }
  }
  __out(15, alarms);
  __halt();
}
)";

} // namespace

int main() {
  DiagnosticEngine Diag;

  // 1. Initial compilation. The CompileOutput carries the binary image
  //    *and* the CompilationRecord the sink keeps for later updates.
  auto V1 = Compiler::compile(VersionOne, CompileOptions(), Diag);
  if (!V1) {
    std::fprintf(stderr, "compile failed:\n%s", Diag.str().c_str());
    return 1;
  }
  std::printf("v1: %zu instructions, %zu data words\n",
              V1->Image.Code.size(), V1->Image.DataInit.size());

  // 2. The update arrives. Recompile update-consciously against the record
  //    (and update-obliviously, for comparison).
  CompileOptions UccOpts;
  UccOpts.RA = RegAllocKind::UpdateConscious;
  UccOpts.DA = DataAllocKind::UpdateConscious;
  auto V2Ucc = Compiler::recompile(VersionTwo, V1->Record, UccOpts, Diag);
  auto V2Base = Compiler::recompile(VersionTwo, V1->Record,
                                    CompileOptions(), Diag);
  if (!V2Ucc || !V2Base) {
    std::fprintf(stderr, "recompile failed:\n%s", Diag.str().c_str());
    return 1;
  }

  // 3. Summarize both updates as edit scripts.
  UpdatePackage PkgUcc = makeUpdate(*V1, *V2Ucc);
  UpdatePackage PkgBase = makeUpdate(*V1, *V2Base);
  std::printf("\nupdate-oblivious: Diff_inst=%d, script=%zu bytes\n",
              PkgBase.Diff.totalDiffInst(), PkgBase.ScriptBytes);
  std::printf("update-conscious: Diff_inst=%d, script=%zu bytes\n",
              PkgUcc.Diff.totalDiffInst(), PkgUcc.ScriptBytes);
  std::printf("full image would be %zu bytes\n",
              V2Ucc->Image.transmitBytes());

  // 4. The energy view (Mica2 model, E_bit ~ 1000 ALU instructions).
  EnergyModel Model;
  std::printf("\nper-hop transmission energy:\n");
  std::printf("  oblivious script: %.3e J\n",
              Model.transmissionEnergy(8.0 * PkgBase.ScriptBytes));
  std::printf("  conscious script: %.3e J\n",
              Model.transmissionEnergy(8.0 * PkgUcc.ScriptBytes));

  // 5. Sensor side: apply the script to the old image and check that the
  //    patched node behaves exactly like a freshly flashed one.
  BinaryImage Patched;
  if (!applyUpdate(V1->Image, PkgUcc.Update, Patched)) {
    std::fprintf(stderr, "patch failed\n");
    return 1;
  }
  SimOptions Sim;
  Sim.SensorInput = {10, 99, 40, 12, 80, 3, 55, 31, 36, 7,
                     90, 22, 45, 60, 2, 34};
  RunResult Fresh = runImage(V2Ucc->Image, Sim);
  RunResult FromPatch = runImage(Patched, Sim);
  std::printf("\npatched == fresh build: %s (alarms=%d)\n",
              Fresh.sameObservableBehavior(FromPatch) ? "yes" : "NO",
              Fresh.DebugTrace.empty() ? -1 : Fresh.DebugTrace.back());
  return Fresh.sameObservableBehavior(FromPatch) ? 0 : 1;
}
