//===- examples/tradeoff_explorer.cpp - the mov-vs-script decision --------===//
//
// Sweeps the expected execution count Cnt over the paper's Fig. 4 scenario
// and watches UCC-RA's decision flip: while the updated code is cold, the
// allocator inserts a mov so unchanged instructions keep their registers;
// once the code is hot enough that the mov's runtime energy exceeds the
// transmission savings, it withdraws the mov and accepts the bigger
// script (section 5.5's adaptive behavior).
//
// Build and run:   ./build/examples/tradeoff_explorer
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ucc;

int main() {
  const UpdateCase &Case = liveRangeExtensionCase();
  std::printf("Scenario: %s\n(benchmark '%s', paper Fig. 4)\n\n",
              Case.Description.c_str(), Case.Benchmark.c_str());

  DiagnosticEngine Diag;
  auto V1 = Compiler::compile(Case.OldSource, CompileOptions(), Diag);
  if (!V1) {
    std::fprintf(stderr, "compile failed:\n%s", Diag.str().c_str());
    return 1;
  }

  EnergyModel Model;
  std::printf("break-even from the energy model: one mov pays for itself "
              "below ~%.0f executions per saved word\n\n",
              Model.breakEvenExecutions(1.0, 1.0));

  std::printf("%10s  %6s  %10s  %14s\n", "Cnt", "movs", "Diff_inst",
              "script bytes");
  for (double Cnt = 1.0; Cnt <= 1e9; Cnt *= 10.0) {
    CompileOptions Opts;
    Opts.RA = RegAllocKind::UpdateConscious;
    Opts.DA = DataAllocKind::UpdateConscious;
    Opts.Ucc.Cnt = Cnt;
    auto V2 = Compiler::recompile(Case.NewSource, V1->Record, Opts, Diag);
    if (!V2) {
      std::fprintf(stderr, "recompile failed:\n%s", Diag.str().c_str());
      return 1;
    }
    int Movs = 0;
    for (const UccAllocStats &S : V2->RegAllocStats)
      Movs += S.InsertedMovs;
    UpdatePackage Pkg = makeUpdate(*V1, *V2);
    std::printf("%10.0e  %6d  %10d  %14zu\n", Cnt, Movs,
                Pkg.Diff.totalDiffInst(), Pkg.ScriptBytes);
  }

  std::printf("\nThe mov disappears once Cnt crosses the break-even: the "
              "compiler stops paying runtime energy for\ntransmission "
              "savings, exactly the fallback the paper describes for test "
              "case 12.\n");
  return 0;
}
